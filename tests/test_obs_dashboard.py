"""Live dashboard tests: frame rendering from registry + ring sink.

The dashboard is a pure consumer -- it reads the world's
:class:`~repro.obs.metrics.MetricsRegistry` and an optional
:class:`~repro.obs.sink.RingSink` through their public snapshot APIs
and renders plain text, so every section can be asserted headlessly.
"""

import io

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import RingSink, Tracer, VirtualClock
from repro.obs.dashboard import Dashboard, format_bytes, main, sparkline
from repro.simmpi import SimWorld


def test_sparkline_scaling():
    assert sparkline([]) == ""
    assert sparkline([0, 0]) == "··"
    line = sparkline([0, 1, 5, 10])
    assert line[0] == "·"
    assert line[3] == "█"          # the peak gets the tallest glyph
    assert line[1] < line[2]       # glyphs are ordered by occupancy


def test_format_bytes_units():
    assert format_bytes(12).strip() == "12 B"
    assert format_bytes(12_300).strip() == "12.3 kB"
    assert format_bytes(12_300_000).strip() == "12.3 MB"
    assert format_bytes(9_900_000_000).strip() == "9.9 GB"


def _run_world(n_steps=1, ring=None, load_balance="flops"):
    world = SimWorld(2)
    tracer = Tracer(clock=VirtualClock(),
                    sink=ring if ring is not None else None)
    run_parallel_simulation(2, plummer_model(300, seed=7),
                            SimulationConfig(theta=0.7), n_steps=n_steps,
                            world=world, trace=tracer,
                            load_balance=load_balance)
    return world


def test_render_empty_world():
    frame = Dashboard(SimWorld(2)).render()
    assert "repro.obs dashboard · 2 ranks" in frame
    assert "(no phase spans yet)" in frame
    assert "(no traffic yet)" in frame


def test_render_after_run_with_ring():
    ring = RingSink(4096)
    world = _run_world(n_steps=2, ring=ring)
    dash = Dashboard(world, ring=ring)
    frame = dash.render()
    assert "step 1" in frame                      # last step observed
    assert "gravity_local" in frame and "█" in frame
    assert "rank" in frame and "sent" in frame
    assert "total" in frame and "messages" in frame
    assert "dropped" not in frame                 # no drops, no banner


def test_render_registry_fallback_without_ring():
    world = _run_world(n_steps=1)
    dash = Dashboard(world)
    frame = dash.render()
    # Phase section comes from force_phase_seconds_total deltas.
    assert "gravity_local" in frame
    # Second frame with no new work: deltas collapse to zero bars.
    frame2 = dash.render()
    assert "repro.obs dashboard" in frame2


def test_render_shows_drop_banner():
    ring = RingSink(8)
    import warnings
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        world = _run_world(n_steps=1, ring=ring)
    assert ring.dropped > 0
    frame = Dashboard(world, ring=ring).render()
    assert "trace events dropped" in frame


def test_render_loadbalance_row():
    ring = RingSink(4096)
    world = _run_world(n_steps=3, ring=ring, load_balance="measured")
    frame = Dashboard(world, ring=ring).render()
    assert "Load balance: imbalance" in frame


def test_draw_modes():
    world = _run_world(n_steps=1)
    ansi_out, headless_out = io.StringIO(), io.StringIO()
    Dashboard(world, out=ansi_out, ansi=True).draw()
    dash = Dashboard(world, out=headless_out, ansi=False)
    dash.draw()
    assert ansi_out.getvalue().startswith("\x1b[2J\x1b[H")
    assert "\x1b" not in headless_out.getvalue()
    assert dash.frames == 1


def test_main_headless(capsys):
    assert main(["--ranks", "2", "--n", "300", "--steps", "1",
                 "--headless"]) == 0
    captured = capsys.readouterr()
    assert "repro.obs dashboard" in captured.out
    assert "frames" in captured.err
    assert "\x1b" not in captured.out


# -- run-health panel ------------------------------------------------------

def test_render_health_panel_states():
    """Headless frame shows ok / straggler / stalled / dead rows."""
    from repro.obs.health import HealthMonitor, HeartbeatBoard

    world = SimWorld(4)
    board = HeartbeatBoard(4)
    world.attach_health(board)
    now = board.now()
    for r in range(3):           # rank 3 never beats -> no age -> ok row
        board.beat(r, step=2, phase=f"phase_{r}")
    # Rank 2's beat is old -> stalled; rank 1 is a cost outlier ->
    # straggler; rank 3 is marked dead on the world.
    board._records[2]["ts"] = now - 100.0
    cost = world.metrics.counter("force_phase_seconds_total",
                                 labelnames=("rank", "phase"))
    for r, secs in ((0, 1.0), (1, 50.0), (2, 1.1), (3, 0.9)):
        cost.inc(secs, rank=r, phase="gravity_local")
    world.mark_rank_failed(3)
    monitor = HealthMonitor(world, board=board, stall_after=5.0)
    frame = Dashboard(world, monitor=monitor).render()
    assert "Run health" in frame
    for state in ("ok", "straggler", "stalled", "dead"):
        assert state in frame
    assert "phase_1" in frame
    # Dead rank outranks its (also skewed) cost row.
    states = monitor.assess(now=now)
    assert states == {0: "ok", 1: "straggler", 2: "stalled", 3: "dead"}


def test_render_health_panel_auto_monitor():
    """Dashboard builds its own monitor from world.health when present."""
    from repro.obs.health import HeartbeatBoard

    world = SimWorld(2)
    world.attach_health(HeartbeatBoard(2))
    world.health.beat(0, step=1, phase="prime")
    world.health.beat(1, step=1, phase="prime")
    frame = Dashboard(world).render()
    assert "Run health" in frame and "prime" in frame
    # Gauges were booked by the monitor pass.
    assert world.metrics.get("health_state") is not None
    assert world.metrics.get("heartbeat_age_seconds") is not None


def test_render_no_health_panel_without_board():
    assert "Run health" not in Dashboard(SimWorld(2)).render()


def test_main_headless_with_health(capsys):
    assert main(["--ranks", "2", "--n", "300", "--steps", "1",
                 "--headless", "--health"]) == 0
    captured = capsys.readouterr()
    assert "Run health" in captured.out
    assert "\x1b" not in captured.out
