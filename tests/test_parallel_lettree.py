"""Tests for LET construction, boundary structures and sufficiency."""

import numpy as np
import pytest

from repro.gravity import tree_forces
from repro.gravity.kernels import point_forces_on_targets
from repro.octree import (
    build_octree,
    compute_moments,
    compute_opening_radii,
    make_groups,
)
from repro.parallel import (
    LETData,
    boundary_structure,
    boundary_sufficient_for,
    build_let_for_box,
    prune_tree,
)


@pytest.fixture()
def source_tree():
    rng = np.random.default_rng(52)
    pos = rng.normal(size=(4000, 3))
    mass = rng.uniform(0.5, 1.0, 4000)
    tree = build_octree(pos, nleaf=16)
    compute_moments(tree, pos, mass)
    compute_opening_radii(tree, 0.5, "bonsai")
    spos = pos[tree.order]
    smass = mass[tree.order]
    return tree, pos, mass, spos, smass


def test_let_conserves_root_mass(source_tree):
    tree, pos, mass, spos, smass = source_tree
    let = build_let_for_box(tree, spos, smass,
                            np.array([10.0, 10, 10]), np.array([12.0, 12, 12]))
    assert let.total_mass() == pytest.approx(mass.sum(), rel=1e-9)


def test_far_viewer_gets_tiny_let(source_tree):
    tree, _, _, spos, smass = source_tree
    far = build_let_for_box(tree, spos, smass,
                            np.array([1e4] * 3), np.array([1.0001e4] * 3))
    near = build_let_for_box(tree, spos, smass,
                             np.array([1.5, 1.5, 1.5]), np.array([3.0, 3, 3]))
    assert far.n_cells < near.n_cells
    assert far.n_particles <= near.n_particles
    assert far.nbytes < near.nbytes


def test_overlapping_viewer_exports_particles(source_tree):
    tree, _, _, spos, smass = source_tree
    let = build_let_for_box(tree, spos, smass,
                            np.array([-0.5] * 3), np.array([0.5] * 3))
    assert let.n_particles > 0
    # Exported particle mass + pruned multipole masses cover the root.
    assert let.total_mass() == pytest.approx(tree.mass[0], rel=1e-9)


def test_let_children_consistency(source_tree):
    tree, _, _, spos, smass = source_tree
    let = build_let_for_box(tree, spos, smass,
                            np.array([2.0, 2, 2]), np.array([4.0, 4, 4]))
    internal = np.flatnonzero(let.n_children > 0)
    for c in internal:
        ch = np.arange(let.first_child[c], let.first_child[c] + let.n_children[c])
        assert np.all(ch < let.n_cells)
        assert let.mass[ch].sum() == pytest.approx(let.mass[c], rel=1e-9)


def test_let_particle_ranges_valid(source_tree):
    tree, _, _, spos, smass = source_tree
    let = build_let_for_box(tree, spos, smass,
                            np.array([-1.0] * 3), np.array([1.0] * 3))
    leaves = np.flatnonzero((let.n_children == 0) & (let.body_count > 0))
    ends = let.body_first[leaves] + let.body_count[leaves]
    assert ends.max() <= let.n_particles
    covered = let.body_count[leaves].sum()
    assert covered == let.n_particles  # each exported particle exactly once


def test_let_force_matches_exact_partial_force(source_tree):
    """Forces computed from a LET must match the exact forces exerted by
    the source's particles on targets inside the viewer box."""
    tree, pos, mass, spos, smass = source_tree
    bmin = np.array([2.0, 2.0, 2.0])
    bmax = np.array([4.0, 4.0, 4.0])
    let = build_let_for_box(tree, spos, smass, bmin, bmax)

    rng = np.random.default_rng(53)
    tpos = rng.uniform(2.0, 4.0, size=(500, 3))
    ttree = build_octree(tpos, nleaf=16)
    compute_moments(ttree, tpos, np.ones(500))
    make_groups(ttree, 64)
    res = tree_forces(ttree, tpos, np.ones(500), theta=0.5, eps=0.01,
                      source=let, source_pos=let.part_pos,
                      source_mass=let.part_mass)
    acc_exact, phi_exact = point_forces_on_targets(tpos, pos, mass, 0.01 ** 2)
    err = np.linalg.norm(res.acc - acc_exact, axis=1) / np.linalg.norm(acc_exact, axis=1)
    assert np.median(err) < 1e-3
    assert err.max() < 0.05


def test_boundary_structure_smaller_than_tree(source_tree):
    tree, _, _, spos, smass = source_tree
    b = boundary_structure(tree, spos, smass)
    assert b.n_cells < tree.n_cells
    assert b.total_mass() == pytest.approx(tree.mass[0], rel=1e-9)


def test_boundary_sufficient_far_insufficient_near(source_tree):
    tree, _, _, spos, smass = source_tree
    b = boundary_structure(tree, spos, smass)
    far = boundary_sufficient_for(b, np.array([50.0] * 3), np.array([51.0] * 3))
    near = boundary_sufficient_for(b, np.array([0.0] * 3), np.array([0.5] * 3))
    assert far is True
    assert near is False


def test_sufficient_boundary_is_accurate_let(source_tree):
    """When the sufficiency check passes, walking the boundary structure
    must give accurate forces for that viewer."""
    tree, pos, mass, spos, smass = source_tree
    b = boundary_structure(tree, spos, smass)
    bmin, bmax = np.array([30.0] * 3), np.array([33.0] * 3)
    assert boundary_sufficient_for(b, bmin, bmax)
    rng = np.random.default_rng(54)
    tpos = rng.uniform(30.0, 33.0, size=(200, 3))
    ttree = build_octree(tpos, nleaf=16)
    compute_moments(ttree, tpos, np.ones(200))
    make_groups(ttree, 64)
    res = tree_forces(ttree, tpos, np.ones(200), theta=0.5, eps=0.0,
                      source=b, source_pos=b.part_pos, source_mass=b.part_mass)
    acc_exact, _ = point_forces_on_targets(tpos, pos, mass, 0.0)
    err = np.linalg.norm(res.acc - acc_exact, axis=1) / np.linalg.norm(acc_exact, axis=1)
    assert np.median(err) < 1e-3


def test_prune_tree_with_open_nothing(source_tree):
    """An opener that never opens yields a single multipole root."""
    tree, _, _, spos, smass = source_tree
    let = prune_tree(tree, spos, smass, lambda cells: np.zeros(len(cells), bool))
    assert let.n_cells == 1
    assert let.n_particles == 0
    assert let.pruned[0]


def test_prune_tree_with_open_everything(source_tree):
    """An opener that always opens exports every particle."""
    tree, _, _, spos, smass = source_tree
    let = prune_tree(tree, spos, smass, lambda cells: np.ones(len(cells), bool))
    assert let.n_particles == tree.n_bodies
    assert not let.pruned.any()


def test_requires_opening_radii():
    pos = np.random.default_rng(55).normal(size=(100, 3))
    tree = build_octree(pos)
    compute_moments(tree, pos, np.ones(100))
    with pytest.raises(ValueError):
        build_let_for_box(tree, pos, np.ones(100),
                          np.zeros(3), np.ones(3))
    with pytest.raises(ValueError):
        boundary_structure(tree, pos, np.ones(100))
