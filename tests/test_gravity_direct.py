"""Tests for the direct O(N^2) solver."""

import numpy as np
import pytest

from repro.gravity import InteractionCounts, direct_forces


def test_two_body():
    pos = np.array([[0.0, 0, 0], [1.0, 0, 0]])
    mass = np.array([1.0, 2.0])
    acc, phi = direct_forces(pos, mass)
    assert acc[0, 0] == pytest.approx(2.0)
    assert acc[1, 0] == pytest.approx(-1.0)
    assert phi[0] == pytest.approx(-2.0)
    assert phi[1] == pytest.approx(-1.0)


def test_newtons_third_law():
    rng = np.random.default_rng(18)
    pos = rng.normal(size=(200, 3))
    mass = rng.uniform(0.1, 1.0, 200)
    acc, _ = direct_forces(pos, mass, eps=0.01)
    total_force = (mass[:, None] * acc).sum(axis=0)
    assert np.allclose(total_force, 0.0, atol=1e-10)


def test_self_interaction_excluded_with_zero_softening():
    pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
    acc, phi = direct_forces(pos, np.array([1.0, 1.0]), eps=0.0)
    assert np.all(np.isfinite(acc)) and np.all(np.isfinite(phi))


def test_targets_subset():
    rng = np.random.default_rng(19)
    pos = rng.normal(size=(100, 3))
    mass = rng.uniform(size=100)
    acc_all, phi_all = direct_forces(pos, mass, eps=0.05)
    idx = np.array([3, 50, 99])
    acc_sub, phi_sub = direct_forces(pos, mass, eps=0.05, targets=idx)
    assert np.allclose(acc_sub, acc_all[idx])
    assert np.allclose(phi_sub, phi_all[idx])


def test_counts_recorded():
    pos = np.random.default_rng(20).normal(size=(50, 3))
    c = InteractionCounts()
    direct_forces(pos, np.ones(50), eps=0.01, counts=c)
    assert c.n_pp == 50 * 49


def test_chunking_invariance():
    rng = np.random.default_rng(21)
    pos = rng.normal(size=(300, 3))
    mass = rng.uniform(size=300)
    a1, p1 = direct_forces(pos, mass, eps=0.02, chunk_pairs=2 ** 25)
    a2, p2 = direct_forces(pos, mass, eps=0.02, chunk_pairs=1000)
    assert np.allclose(a1, a2)
    assert np.allclose(p1, p2)


def test_potential_energy_matches_pairwise_sum():
    rng = np.random.default_rng(22)
    pos = rng.normal(size=(60, 3))
    mass = rng.uniform(size=60)
    _, phi = direct_forces(pos, mass, eps=0.0)
    w = 0.5 * np.sum(mass * phi)
    # brute-force pairwise
    w2 = 0.0
    for i in range(60):
        for j in range(i + 1, 60):
            w2 -= mass[i] * mass[j] / np.linalg.norm(pos[i] - pos[j])
    assert w == pytest.approx(w2, rel=1e-10)


def test_softening_weakens_binding():
    rng = np.random.default_rng(23)
    pos = rng.normal(size=(80, 3))
    mass = np.ones(80)
    _, phi0 = direct_forces(pos, mass, eps=0.0)
    _, phi1 = direct_forces(pos, mass, eps=0.5)
    assert phi1.sum() > phi0.sum()
