"""Tests for the serial and hierarchical sampling decomposers."""

import numpy as np
import pytest

from repro.parallel import (
    hierarchical_sample_boundaries,
    sample_weighted_keys,
    serial_sample_boundaries,
)
from repro.parallel.loadbalance import domain_counts
from repro.parallel.sampling import factor_grid
from repro.simmpi import spmd_run


def test_sample_weighted_keys_rate():
    keys = np.sort(np.random.default_rng(42).integers(
        0, 2 ** 63, 1000, dtype=np.uint64))
    s, c = sample_weighted_keys(keys, None, 0.05)
    assert len(s) == 50
    assert np.all(np.isin(s, keys))
    assert c.sum() == pytest.approx(1000.0)


def test_sample_weighted_keys_weighting():
    """Heavy particles must attract proportionally more samples."""
    keys = np.arange(1000, dtype=np.uint64)
    w = np.ones(1000)
    w[:100] = 99.0  # 10% of particles hold ~92% of the weight
    s, _ = sample_weighted_keys(keys, w, 0.1)
    frac_low = np.mean(s < 100)
    assert frac_low > 0.8


def test_sample_requires_sorted():
    with pytest.raises(ValueError):
        sample_weighted_keys(np.array([5, 1], dtype=np.uint64), None, 0.5)


def test_sample_empty():
    s, c = sample_weighted_keys(np.empty(0, dtype=np.uint64), None, 0.5)
    assert len(s) == 0 and len(c) == 0


def test_factor_grid():
    assert factor_grid(16) == (4, 4)
    assert factor_grid(12) == (3, 4)
    assert factor_grid(7) == (1, 7)
    assert factor_grid(1) == (1, 1)


def _distributed_keys(rank, size, n=4000, seed=43):
    rng = np.random.default_rng(seed + rank)
    return np.sort(rng.integers(0, 2 ** 63, n, dtype=np.uint64))


@pytest.mark.parametrize("method_fn", [serial_sample_boundaries,
                                       hierarchical_sample_boundaries])
def test_boundaries_identical_on_all_ranks(method_fn):
    def prog(comm):
        keys = _distributed_keys(comm.rank, comm.size)
        if method_fn is serial_sample_boundaries:
            return method_fn(comm, keys, None, comm.size, 0.05)
        return method_fn(comm, keys, None, comm.size, 0.02, 0.1)

    results = spmd_run(4, prog)
    for r in results[1:]:
        assert np.array_equal(r, results[0])


@pytest.mark.parametrize("size", [2, 4, 6])
def test_hierarchical_balances_counts(size):
    def prog(comm):
        keys = _distributed_keys(comm.rank, comm.size)
        b = hierarchical_sample_boundaries(comm, keys, None, comm.size,
                                           0.05, 0.2)
        return domain_counts(keys, b)

    results = spmd_run(size, prog)
    total = np.sum(results, axis=0)
    avg = total.sum() / size
    assert total.max() < 1.35 * avg
    assert total.min() > 0.6 * avg


def test_serial_balances_counts():
    def prog(comm):
        keys = _distributed_keys(comm.rank, comm.size, seed=44)
        b = serial_sample_boundaries(comm, keys, None, comm.size, 0.1)
        return domain_counts(keys, b)

    results = spmd_run(4, prog)
    total = np.sum(results, axis=0)
    avg = total.mean()
    assert total.max() < 1.35 * avg


def test_hierarchical_matches_serial_quality():
    """The parallel method must not degrade balance much vs the serial
    one at the same refinement rate."""
    def prog_h(comm):
        keys = _distributed_keys(comm.rank, comm.size, seed=45)
        b = hierarchical_sample_boundaries(comm, keys, None, comm.size,
                                           0.05, 0.2)
        return domain_counts(keys, b)

    def prog_s(comm):
        keys = _distributed_keys(comm.rank, comm.size, seed=45)
        b = serial_sample_boundaries(comm, keys, None, comm.size, 0.2)
        return domain_counts(keys, b)

    th = np.sum(spmd_run(4, prog_h), axis=0)
    ts = np.sum(spmd_run(4, prog_s), axis=0)
    imb_h = th.max() / th.mean()
    imb_s = ts.max() / ts.mean()
    assert imb_h < imb_s * 1.25


def test_weighted_decomposition_balances_cost():
    """Cost-weighted sampling must balance cost, not just counts."""
    def prog(comm):
        keys = _distributed_keys(comm.rank, comm.size, seed=46)
        # low keys are 10x more expensive on every rank
        w = np.where(keys < np.uint64(2 ** 62), 10.0, 1.0)
        b = serial_sample_boundaries(comm, keys, w, comm.size, 0.2,
                                     cap_ratio=np.inf)
        dom = np.searchsorted(b[1:-1], keys, side="right")
        return np.bincount(dom, weights=w, minlength=comm.size)

    cost = np.sum(spmd_run(4, prog), axis=0)
    assert cost.max() / cost.min() < 1.5
