"""Fast-path force pipeline equivalence: batched forest walks, segment
scatter, float32 evaluation and the sort cache.

The tentpole invariant: every fast-path knob is a pure optimisation.
In float64 the batched multi-source walk must produce *byte-identical*
interaction counts and *bitwise-equal* forces to the reference
one-walk-per-source path (under the deterministic tracer, which fixes
LET arrival order for both); float32 is bounded by the theta-scaled
differential envelope.
"""

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import ParallelSimulation
from repro.gravity import (
    SourceForest,
    split_by_source,
    tree_forces,
    walk_interaction_lists,
)
from repro.gravity.forest import walk_forest_interaction_lists
from repro.gravity.treewalk import group_aabbs
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock
from repro.octree import (
    build_octree,
    compute_moments,
    compute_opening_radii,
    make_groups,
)
from repro.parallel import boundary_structure
from repro.sfc import BoundingBox
from repro.simmpi import SimWorld, spmd_run
from repro.testing.differential import max_rel_difference

N = 1024


def _cfg(**kw):
    base = dict(theta=0.5, softening=0.02, dt=0.01)
    base.update(kw)
    return SimulationConfig(**base)


def _forces(particles, config, n_ranks, steps=0, load_balance="flops"):
    """One traced distributed force evaluation (+ optional steps).

    The deterministic virtual clock fixes LET consumption order, so two
    configurations that promise bitwise-equal forces can be compared
    exactly.  Returns id-ordered (acc, phi), per-rank count tuples and
    the per-rank peak frontier widths.
    """
    n = particles.n
    world = SimWorld(n_ranks)
    world.attach_tracer(Tracer(clock=VirtualClock()))

    def prog(comm):
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(comm, particles.select(np.arange(lo, hi)),
                                 config, load_balance=load_balance)
        sim.prime()
        for _ in range(steps):
            sim.step()
        r = sim._result
        return (sim.particles.ids, sim._acc, sim._phi,
                (r.counts_local.n_pp, r.counts_local.n_pc,
                 r.counts_let.n_pp, r.counts_let.n_pc),
                r.max_frontier)

    results = spmd_run(n_ranks, prog, world=world, timeout=300.0)
    ids = np.concatenate([r[0] for r in results])
    order = np.argsort(ids, kind="stable")
    acc = np.concatenate([r[1] for r in results])[order]
    phi = np.concatenate([r[2] for r in results])[order]
    counts = [r[3] for r in results]
    frontiers = [r[4] for r in results]
    return acc, phi, counts, frontiers


# -- batched forest vs per-source walks (the tentpole) --------------------

@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_batched_forest_bitwise_matches_per_source(n_ranks):
    particles = plummer_model(N, seed=11)
    ref = _forces(particles, _cfg(batch_sources=False), n_ranks)
    fast = _forces(particles, _cfg(batch_sources=True), n_ranks)
    assert fast[2] == ref[2]                      # counts byte-identical
    assert fast[0].tobytes() == ref[0].tobytes()  # forces bitwise equal
    assert fast[1].tobytes() == ref[1].tobytes()
    assert all(f >= 1 for f in fast[3])


def test_batched_forest_matches_after_steps():
    # Multiple steps: the comparison also covers sort-cache reuse and the
    # keys carried through the exchange.
    particles = plummer_model(N, seed=12)
    ref = _forces(particles, _cfg(batch_sources=False), 4, steps=2)
    fast = _forces(particles, _cfg(batch_sources=True), 4, steps=2)
    assert fast[2] == ref[2]
    assert fast[0].tobytes() == ref[0].tobytes()


def test_segment_scatter_matches_bincount_counts_exactly():
    particles = plummer_model(N, seed=13)
    seg = _forces(particles, _cfg(scatter="segment"), 4)
    binc = _forces(particles, _cfg(scatter="bincount", batch_sources=True), 4)
    assert seg[2] == binc[2]
    # Different summation order: equal to tight tolerance, not bitwise.
    np.testing.assert_allclose(seg[0], binc[0], rtol=1e-12, atol=1e-13)


def test_float32_bounded_by_theta_envelope():
    particles = plummer_model(N, seed=14)
    cfg64 = _cfg(precision="float64")
    cfg32 = _cfg(precision="float32")
    a64, _, c64, _ = _forces(particles, cfg64, 4)
    a32, _, c32, _ = _forces(particles, cfg32, 4)
    assert c32 == c64            # precision never changes the walk
    # f32 kernel round-off is orders below the tree's own MAC error;
    # the differential harness's worst-particle envelope bounds it.
    assert max_rel_difference(a32, a64) < 0.3 * cfg64.theta ** 2


def test_sort_reuse_off_matches_on():
    # Plummer keys are distinct, so tie-breaking cannot bite: reusing
    # the sort permutation must reproduce the cold-sort forces exactly.
    particles = plummer_model(N, seed=15)
    on = _forces(particles, _cfg(sort_reuse=True), 2, steps=2)
    off = _forces(particles, _cfg(sort_reuse=False), 2, steps=2)
    assert on[2] == off[2]
    assert on[0].tobytes() == off[0].tobytes()


# -- forest walk unit tests ----------------------------------------------

@pytest.fixture(scope="module")
def slabs():
    """A target tree plus three remote boundary structures, shared box."""
    rng = np.random.default_rng(7)
    pos = rng.normal(size=(4000, 3))
    mass = rng.uniform(0.5, 1.0, 4000)
    box = BoundingBox.from_positions(pos)
    parts = np.array_split(np.argsort(pos[:, 0], kind="stable"), 4)

    def make(idx):
        t = build_octree(pos[idx], nleaf=16, box=box)
        compute_moments(t, pos[idx], mass[idx])
        compute_opening_radii(t, 0.5, "bonsai")
        make_groups(t, 64)
        sp = pos[idx][t.order]
        sm = mass[idx][t.order]
        return t, sp, sm

    target, tsp, _ = make(parts[0])
    sources = [boundary_structure(*make(p)) for p in parts[1:]]
    gmin, gmax = group_aabbs(target, tsp)
    return sources, gmin, gmax


def test_forest_pairs_equal_per_source_walks(slabs):
    sources, gmin, gmax = slabs
    forest = SourceForest.concatenate(sources, ranks=range(1, 4))
    assert forest.n_sources == 3
    assert forest.n_cells == sum(len(s.mass) for s in sources)
    fpc_g, fpc_c, fpp_g, fpp_c, mf = walk_forest_interaction_lists(
        forest, gmin, gmax)
    pc_g, pc_c, pc_s = split_by_source(forest, fpc_g, fpc_c)
    pp_g, pp_c, pp_s = split_by_source(forest, fpp_g, fpp_c)
    assert mf >= 1
    for i, src in enumerate(sources):
        rpc_g, rpc_c, rpp_g, rpp_c, _ = walk_interaction_lists(
            src, gmin, gmax)
        off = forest.cell_offsets[i]
        a, b = pc_s[i], pc_s[i + 1]
        assert np.array_equal(pc_g[a:b], rpc_g)
        assert np.array_equal(pc_c[a:b] - off, rpc_c)
        a, b = pp_s[i], pp_s[i + 1]
        assert np.array_equal(pp_g[a:b], rpp_g)
        assert np.array_equal(pp_c[a:b] - off, rpp_c)


def test_forest_empty_pair_split(slabs):
    sources, _, _ = slabs
    forest = SourceForest.concatenate(sources, ranks=range(1, 4))
    e = np.empty(0, dtype=np.int64)
    pg, pc, starts = split_by_source(forest, e, e)
    assert len(pg) == 0 and len(pc) == 0
    assert np.array_equal(starts, np.zeros(4, dtype=np.int64))


def test_forest_rejects_zero_sources():
    with pytest.raises(ValueError):
        SourceForest.concatenate([], [])


# -- serial fast path -----------------------------------------------------

def test_serial_segment_matches_bincount():
    rng = np.random.default_rng(3)
    pos = rng.normal(size=(2500, 3))
    mass = rng.uniform(0.5, 1.0, 2500)
    tree = build_octree(pos, nleaf=16)
    compute_moments(tree, pos, mass)
    make_groups(tree, 64)
    a = tree_forces(tree, pos, mass, theta=0.5, eps=0.01, scatter="segment")
    b = tree_forces(tree, pos, mass, theta=0.5, eps=0.01, scatter="bincount")
    assert a.counts.n_pp == b.counts.n_pp
    assert a.counts.n_pc == b.counts.n_pc
    assert a.max_frontier == b.max_frontier
    np.testing.assert_allclose(a.acc, b.acc, rtol=1e-12, atol=1e-13)
    np.testing.assert_allclose(a.phi, b.phi, rtol=1e-12, atol=1e-13)


def test_config_validates_fast_path_knobs():
    with pytest.raises(ValueError):
        SimulationConfig(scatter="nope")
    with pytest.raises(ValueError):
        SimulationConfig(precision="float16")
    with pytest.raises(ValueError):
        SimulationConfig(precision="float32", scatter="bincount")
    with pytest.raises(ValueError):
        SimulationConfig(chunk=0)
    with pytest.raises(ValueError):
        SimulationConfig(tree_reuse="rebuildish")
    with pytest.raises(ValueError):
        SimulationConfig(let_drain="eventually")


# -- step coherence: tree reuse, walk warm-starts, incremental drain ------
#
# Every knob below is a pure optimisation: float64 forces and the
# n_pp/n_pc interaction counts must be *bitwise identical* to the
# knob-off run, at every rank count, on every transport.  The reuse
# paths only engage when they can prove equivalence (structural
# fingerprints, churn thresholds) -- when they cannot, they fall back
# cold, and these comparisons hold either way.

COHERENT = dict(tree_reuse="repair", walk_warm_start=True,
                let_drain="incremental")


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_warm_start_bitwise_matches_cold(n_ranks):
    particles = plummer_model(N, seed=21)
    ref = _forces(particles, _cfg(), n_ranks, steps=2,
                  load_balance="measured")
    warm = _forces(particles, _cfg(walk_warm_start=True), n_ranks,
                   steps=2, load_balance="measured")
    assert warm[2] == ref[2]                      # counts byte-identical
    assert warm[0].tobytes() == ref[0].tobytes()  # forces bitwise equal
    assert warm[1].tobytes() == ref[1].tobytes()


@pytest.mark.parametrize("n_ranks", [1, 2, 4])
def test_tree_reuse_bitwise_matches_cold(n_ranks):
    particles = plummer_model(N, seed=22)
    ref = _forces(particles, _cfg(), n_ranks, steps=2,
                  load_balance="measured")
    reuse = _forces(particles, _cfg(tree_reuse="repair"), n_ranks,
                    steps=2, load_balance="measured")
    assert reuse[2] == ref[2]
    assert reuse[0].tobytes() == ref[0].tobytes()
    assert reuse[1].tobytes() == ref[1].tobytes()


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_all_coherence_knobs_bitwise(n_ranks):
    particles = plummer_model(N, seed=23)
    ref = _forces(particles, _cfg(), n_ranks, steps=2,
                  load_balance="measured")
    on = _forces(particles, _cfg(**COHERENT), n_ranks, steps=2,
                 load_balance="measured")
    assert on[2] == ref[2]
    assert on[0].tobytes() == ref[0].tobytes()
    assert on[1].tobytes() == ref[1].tobytes()


def test_incremental_drain_bitwise_matches_deterministic():
    # The incremental drain overlaps the boundary-batch walk with
    # in-flight LET sends but consumes LETs in the same rank order as
    # the deterministic drain: identical accumulation sequence.
    particles = plummer_model(N, seed=24)
    det = _forces(particles, _cfg(let_drain="deterministic"), 4, steps=1)
    inc = _forces(particles, _cfg(let_drain="incremental"), 4, steps=1)
    assert inc[2] == det[2]
    assert inc[0].tobytes() == det[0].tobytes()
    assert inc[1].tobytes() == det[1].tobytes()


def test_coherence_knobs_bitwise_under_flops_rebalance():
    # Stale-cache regression: "flops" load balance refits the box and
    # re-cuts the domain every step, migrating particles between ranks.
    # Epoch tags + structural fingerprints must force every cache cold
    # across each relayout -- results stay bitwise equal to knob-off.
    particles = plummer_model(N, seed=25)
    ref = _forces(particles, _cfg(), 4, steps=3, load_balance="flops")
    on = _forces(particles, _cfg(**COHERENT), 4, steps=3,
                 load_balance="flops")
    assert on[2] == ref[2]
    assert on[0].tobytes() == ref[0].tobytes()


def test_coherence_knobs_bitwise_under_forced_rebalance():
    # Measured LB with trigger ratio 1.0 rebalances on every step: the
    # adversarial case for warm-start/sort-cache entries surviving an
    # exchange.  The layout epoch must invalidate them.  Cut weights
    # come from interaction counts (lb_source="counts"): wall-derived
    # weights would legitimately shift the cuts when reuse changes the
    # phase timings, which is a decomposition change, not staleness.
    particles = plummer_model(N, seed=26)

    def run(config):
        n = particles.n
        world = SimWorld(4)
        world.attach_tracer(Tracer(clock=VirtualClock()))

        def prog(comm):
            lo = n * comm.rank // comm.size
            hi = n * (comm.rank + 1) // comm.size
            sim = ParallelSimulation(
                comm, particles.select(np.arange(lo, hi)), config,
                load_balance="measured", lb_source="counts",
                lb_trigger_ratio=1.0)
            sim.prime()
            for _ in range(3):
                sim.step()
            return sim.particles.ids, sim._acc, sim._layout_epoch

        results = spmd_run(4, prog, world=world, timeout=300.0)
        ids = np.concatenate([r[0] for r in results])
        order = np.argsort(ids, kind="stable")
        acc = np.concatenate([r[1] for r in results])[order]
        bumps = sum(r[2] for r in results)
        return acc, bumps

    acc_ref, _ = run(_cfg())
    acc_on, bumps = run(_cfg(**COHERENT))
    assert bumps > 0      # the hazard was actually exercised
    assert acc_on.tobytes() == acc_ref.tobytes()


def test_coherence_caches_engage():
    # In the coherent regime (pinned box via measured LB, small dt) the
    # tree cache must actually repair/reuse and the walk cache must
    # actually score hits -- guards against the knobs silently always
    # falling back cold.
    from repro.core.parallel_simulation import run_parallel_simulation
    particles = plummer_model(2000, seed=27)
    cfg = _cfg(dt=1e-3, **COHERENT)
    sims = run_parallel_simulation(2, particles, cfg, n_steps=4,
                                   load_balance="measured",
                                   lb_source="counts")
    modes = [s._tree_cache.last.mode for s in sims]
    assert any(m in ("reuse", "repair") for m in modes), modes
    assert sum(s._walk_cache.hits for s in sims) > 0
    assert all(s._walk_cache.epoch >= 0 for s in sims)


@pytest.mark.parametrize("n_ranks", [2, 4])
def test_coherence_knobs_bitwise_on_process_transport(n_ranks):
    # Same contract across the process (forked ranks, shared-memory
    # messaging) transport: end-of-run positions, forces and per-step
    # interaction counts bitwise-match the knob-off process run.
    from repro.core.parallel_simulation import run_parallel_simulation
    particles = plummer_model(512, seed=28)

    def run(config):
        res = run_parallel_simulation(n_ranks, particles.copy(), config,
                                      n_steps=2, transport="process",
                                      load_balance="measured",
                                      lb_source="counts", timeout=300.0)
        ids = np.concatenate([r.particles.ids for r in res])
        order = np.argsort(ids, kind="stable")
        pos = np.concatenate([r.particles.pos for r in res])[order]
        acc = np.concatenate([r.acc for r in res])[order]
        counts = [tuple((bd.counts.n_pp, bd.counts.n_pc)
                        for bd in r.history) for r in res]
        return pos, acc, counts

    # Untraced run: let_drain="auto" would resolve to the opportunistic
    # drain, whose accumulation order races on LET arrival -- pin the
    # baseline to the deterministic rank-order drain, the schedule the
    # incremental drain promises to match bitwise.
    ref = run(_cfg(let_drain="deterministic"))
    on = run(_cfg(**COHERENT))
    assert on[2] == ref[2]
    assert on[0].tobytes() == ref[0].tobytes()
    assert on[1].tobytes() == ref[1].tobytes()


# -- warm_walk unit tests -------------------------------------------------

@pytest.fixture(scope="module")
def warm_setup():
    """A target tree walked against its own boundary structure."""
    rng = np.random.default_rng(31)
    pos = rng.normal(size=(3000, 3))
    mass = rng.uniform(0.5, 1.0, 3000)
    box = BoundingBox.from_positions(pos)
    t = build_octree(pos, nleaf=16, box=box)
    compute_moments(t, pos, mass)
    compute_opening_radii(t, 0.5, "bonsai")
    make_groups(t, 64)
    sp = pos[t.order]
    sm = mass[t.order]
    source = boundary_structure(t, sp, sm)
    gmin, gmax = group_aabbs(t, sp)
    return source, gmin, gmax


def test_warm_walk_miss_then_hit_bitwise(warm_setup):
    from repro.gravity import WalkCache, warm_walk
    source, gmin, gmax = warm_setup
    rpc_g, rpc_c, rpp_g, rpp_c, _ = walk_interaction_lists(
        source, gmin, gmax)
    cache = WalkCache()
    for expect_warm in (False, True):
        pc_g, pc_c, pp_g, pp_c, mf, warm = warm_walk(
            cache, ("let", 1), source, gmin, gmax)
        assert warm is expect_warm
        assert pc_g.tobytes() == rpc_g.tobytes()
        assert pc_c.tobytes() == rpc_c.tobytes()
        assert pp_g.tobytes() == rpp_g.tobytes()
        assert pp_c.tobytes() == rpp_c.tobytes()
        assert mf >= 1
    assert cache.hits > 0 and cache.misses == 1


def test_warm_walk_exact_under_mac_flips(warm_setup):
    # Same structure, perturbed moments: PC<->PP<->OPEN decisions flip
    # but the warm result must still equal a cold walk on the *new*
    # moments, bitwise -- the OPEN->accept fallback and PC->OPEN
    # sub-walks are what make that exact.
    import dataclasses
    from repro.gravity import WalkCache, warm_walk
    source, gmin, gmax = warm_setup
    rng = np.random.default_rng(32)
    flipped = dataclasses.replace(
        source, r_crit=source.r_crit * rng.uniform(0.5, 2.0,
                                                   len(source.r_crit)))
    cache = WalkCache()
    warm_walk(cache, "local", source, gmin, gmax)     # prime (cold)
    wg = warm_walk(cache, "local", flipped, gmin, gmax)
    ref = walk_interaction_lists(flipped, gmin, gmax)
    assert wg[5] is True      # same structure arrays: warm path taken
    for a, b in zip(wg[:4], ref[:4]):
        assert a.tobytes() == b.tobytes()
    # Warm again on the flipped moments: the stored-back visit list must
    # itself be a valid warm-start basis.
    wg2 = warm_walk(cache, "local", flipped, gmin, gmax)
    assert wg2[5] is True
    for a, b in zip(wg2[:4], ref[:4]):
        assert a.tobytes() == b.tobytes()


def test_walk_cache_flushes_on_group_change(warm_setup):
    from repro.gravity import WalkCache, warm_walk
    source, gmin, gmax = warm_setup
    cache = WalkCache()
    cache.begin_step(np.array([0]), np.array([10]))
    warm_walk(cache, "local", source, gmin, gmax)
    # New partition: cached group ids are meaningless, entries flushed.
    cache.begin_step(np.array([0, 10]), np.array([10, 5]))
    assert not cache.has("local", source)
    got = warm_walk(cache, "local", source, gmin, gmax)
    assert got[5] is False
    cache.bump_epoch()
    assert not cache.has("local", source)
