"""Tests for Jeans-equation and disk velocity assignment."""

import numpy as np
import pytest

from repro.ics import PlummerProfile, jeans_sigma_r, sample_isotropic_velocities
from repro.ics.velocities import disk_velocities, epicyclic_frequency_squared


def test_jeans_sigma_plummer_analytic():
    """Isotropic Plummer has sigma_r^2(0) = M / (6 a) at the center
    (Dejonghe 1987); check the Jeans integral against it."""
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    sig = jeans_sigma_r(np.array([1e-3]), p.density, p.enclosed_mass, 50.0)
    assert sig[0] ** 2 == pytest.approx(1.0 / 6.0, rel=0.02)


def test_jeans_sigma_decreases_outward():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    r = np.array([0.1, 1.0, 5.0, 20.0])
    sig = jeans_sigma_r(r, p.density, p.enclosed_mass, 50.0)
    assert np.all(np.diff(sig) < 0)


def test_isotropic_velocities_statistics():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    rng = np.random.default_rng(35)
    r = np.full(20000, 1.0)
    from repro.ics.sampling import isotropic_directions
    pos = r[:, None] * isotropic_directions(rng, 20000)
    vel = sample_isotropic_velocities(pos, p.density, p.enclosed_mass, 50.0, rng)
    sig_expected = jeans_sigma_r(np.array([1.0]), p.density, p.enclosed_mass, 50.0)[0]
    assert np.std(vel[:, 0]) == pytest.approx(sig_expected, rel=0.05)
    assert abs(np.mean(vel)) < 0.01


def test_escape_speed_clamp():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    rng = np.random.default_rng(36)
    pos = np.full((5000, 3), [10.0, 0.0, 0.0])
    vel = sample_isotropic_velocities(pos, p.density, p.enclosed_mass, 50.0, rng)
    v_esc = np.sqrt(2.0 * 1.0 / 10.0)
    assert np.linalg.norm(vel, axis=1).max() <= 0.951 * v_esc


def test_epicyclic_frequency_flat_curve():
    """Flat rotation curve: kappa = sqrt(2) Omega."""
    vc2 = lambda R: np.full_like(np.asarray(R, dtype=float), 0.04)
    R = np.array([5.0])
    k2 = epicyclic_frequency_squared(R, vc2)
    omega2 = 0.04 / 25.0
    assert k2[0] == pytest.approx(2.0 * omega2, rel=1e-3)


def test_epicyclic_frequency_keplerian():
    """Keplerian curve: kappa = Omega."""
    vc2 = lambda R: 1.0 / np.asarray(R, dtype=float)
    R = np.array([4.0])
    k2 = epicyclic_frequency_squared(R, vc2)
    omega2 = (1.0 / 4.0) / 16.0
    assert k2[0] == pytest.approx(omega2, rel=1e-3)


def test_disk_velocities_rotation_dominated():
    """Sampled disk velocities rotate in the +phi sense with small
    dispersions relative to v_c for a cool disk."""
    rng = np.random.default_rng(37)
    n = 20000
    R = np.full(n, 8.0)
    phi = rng.uniform(0, 2 * np.pi, n)
    vc2 = lambda r: np.full_like(np.asarray(r, dtype=float), 1.0)
    sigma = lambda r: 0.02 * np.exp(-np.asarray(r, dtype=float) / 2.5)
    vel = disk_velocities(R, phi, vc2, sigma, 2.5, 0.3, toomre_q=1.2,
                          q_ref_radius=6.0, rng=rng)
    # tangential unit vector
    t = np.stack([-np.sin(phi), np.cos(phi)], axis=1)
    v_phi = vel[:, 0] * t[:, 0] + vel[:, 1] * t[:, 1]
    assert np.mean(v_phi) > 0.8  # rotation near v_c = 1
    assert np.std(vel[:, 2]) < np.std(v_phi - np.mean(v_phi)) * 2.0


def test_disk_asymmetric_drift_slows_rotation():
    """Hotter disks rotate slower on average (asymmetric drift)."""
    rng = np.random.default_rng(38)
    n = 20000
    R = np.full(n, 8.0)
    phi = np.zeros(n)
    vc2 = lambda r: np.full_like(np.asarray(r, dtype=float), 1.0)
    sigma = lambda r: 0.05 * np.exp(-np.asarray(r, dtype=float) / 2.5)
    cold = disk_velocities(R, phi, vc2, sigma, 2.5, 0.3, toomre_q=0.5,
                           q_ref_radius=6.0, rng=np.random.default_rng(1))
    hot = disk_velocities(R, phi, vc2, sigma, 2.5, 0.3, toomre_q=2.5,
                          q_ref_radius=6.0, rng=np.random.default_rng(1))
    # At phi=0 the tangential direction is +y.
    assert np.mean(hot[:, 1]) < np.mean(cold[:, 1])
