"""Step-coherence tier 1: incremental octree repair is invisible.

The contract under test: ``cached_octree`` -- whatever mode it takes
(``reuse``, ``repair``, ``cold``) -- returns a tree whose every array is
bitwise-identical to a cold ``build_octree`` on the same sorted keys,
and whose moments/opening radii (recomputed globally, never spliced)
match the cold tree's to 0 ULP.  A Hypothesis drift walk drives the
cache through multi-step trajectories with bounded per-step
displacements, exercising all SortCache modes along the way; unit tests
pin the cache-management edges (signature changes, churn fallback,
epoch bumps) and the SortCache layout-epoch regression from the
stale-permutation hazard.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.octree import (
    TREE_MODES,
    TreeCache,
    build_octree,
    cached_octree,
    compute_moments,
    compute_opening_radii,
    make_groups,
)
from repro.sfc import BoundingBox, SortCache

#: Fixed unit box: a pinned domain is the regime where repair pays off
#: (load_balance="measured" in the drivers); a refitted box changes the
#: key grid and correctly forces a cold build instead.
BOX = BoundingBox(np.zeros(3), 1.0)


def _assert_trees_equal(got, ref):
    """Every array bitwise-identical: topology, ordering, geometry."""
    for name in ("cell_key", "cell_level", "cell_parent", "first_child",
                 "n_children", "body_first", "body_count", "order", "keys",
                 "center", "half"):
        a, b = getattr(got, name), getattr(ref, name)
        assert a.dtype == b.dtype, name
        assert a.tobytes() == b.tobytes(), name
    assert got.nleaf == ref.nleaf and got.curve == ref.curve


def _assert_properties_equal(got, ref, pos, mass, theta=0.5):
    """Moments + opening radii recomputed on both trees match to 0 ULP."""
    for t in (got, ref):
        compute_moments(t, pos, mass)
        compute_opening_radii(t, theta, "bonsai")
        make_groups(t, 64)
    for name in ("mass", "com", "quad", "bmin", "bmax", "r_crit",
                 "group_first", "group_count"):
        assert getattr(got, name).tobytes() == getattr(ref, name).tobytes(), \
            name


def _drift(rng, pos, scale):
    if scale == 0.0:
        return pos
    return np.clip(pos + rng.normal(scale=scale, size=pos.shape),
                   1e-4, 1.0 - 1e-4)


# -- the property: repaired == cold, bitwise, across drift walks ----------

@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2 ** 16),
       n=st.integers(80, 400),
       nleaf=st.sampled_from([8, 16]),
       scales=st.lists(
           st.sampled_from([0.0, 1e-6, 1e-3, 0.02, 0.3]),
           min_size=1, max_size=4))
def test_cached_octree_bitwise_equals_cold_under_drift(seed, n, nleaf,
                                                       scales):
    """Bounded per-step displacements; every step's cached tree must be
    indistinguishable from a cold build on the same keys, whichever of
    reuse/repair/cold the cache picked and whichever mode the shared
    SortCache produced the permutation in."""
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3)) * 0.98 + 0.01
    mass = rng.uniform(0.5, 1.0, n)
    cache = TreeCache()
    sc = SortCache()
    seen = set()
    for scale in scales:
        pos = _drift(rng, pos, scale)
        keys = BOX.keys(pos, "hilbert")
        order = sc.order_for(keys)
        got = cached_octree(cache, pos, nleaf=nleaf, box=BOX,
                            keys=keys, order=order)
        ref = build_octree(pos, nleaf=nleaf, box=BOX,
                           keys=keys, order=order)
        assert cache.last.mode in TREE_MODES
        seen.add(cache.last.mode)
        _assert_trees_equal(got, ref)
        _assert_properties_equal(got, ref, pos, mass)
    assert seen <= set(TREE_MODES)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16), n=st.integers(100, 300))
def test_churn_burst_recovers(seed, n):
    """A full scramble mid-trajectory (churn above threshold -> cold)
    must neither corrupt the cache nor the steps after it."""
    rng = np.random.default_rng(seed)
    pos = rng.random((n, 3)) * 0.98 + 0.01
    cache = TreeCache()
    for step in range(4):
        if step == 2:
            pos = rng.random((n, 3)) * 0.98 + 0.01   # burst
        else:
            pos = _drift(rng, pos, 1e-3)
        keys = BOX.keys(pos, "hilbert")
        order = np.argsort(keys, kind="stable").astype(np.int64)
        got = cached_octree(cache, pos, nleaf=8, box=BOX,
                            keys=keys, order=order)
        ref = build_octree(pos, nleaf=8, box=BOX, keys=keys, order=order)
        _assert_trees_equal(got, ref)
        if step == 2:
            assert cache.last.mode == "cold"


# -- deterministic mode selection ----------------------------------------

def _step(cache, pos, nleaf=8, box=BOX):
    keys = box.keys(pos, "hilbert")
    order = np.argsort(keys, kind="stable").astype(np.int64)
    tree = cached_octree(cache, pos, nleaf=nleaf, box=box,
                         keys=keys, order=order)
    return tree, build_octree(pos, nleaf=nleaf, box=box,
                              keys=keys, order=order)


def test_first_call_is_cold_then_identical_positions_reuse():
    rng = np.random.default_rng(0)
    pos = rng.random((500, 3)) * 0.98 + 0.01
    cache = TreeCache()
    t1, _ = _step(cache, pos)
    assert cache.last.mode == "cold"
    t2, ref = _step(cache, pos)
    assert cache.last.mode == "reuse"
    assert cache.last.cells_grafted == t1.n_cells
    # Reuse shares the frozen topology/geometry arrays outright -- that
    # identity is what lets the WalkCache validate in O(1).
    assert t2.first_child is t1.first_child
    assert t2.center is t1.center
    _assert_trees_equal(t2, ref)


def test_small_drift_repairs_not_rebuilds():
    rng = np.random.default_rng(1)
    pos = rng.random((2000, 3)) * 0.98 + 0.01
    cache = TreeCache()
    _step(cache, pos)
    modes = set()
    for _ in range(4):
        pos = _drift(rng, pos, 2e-4)
        got, ref = _step(cache, pos)
        modes.add(cache.last.mode)
        _assert_trees_equal(got, ref)
        assert 0.0 <= cache.last.churn <= 1.0
    assert modes & {"reuse", "repair"}, modes
    st = cache.last
    assert st.cells_total == ref.n_cells
    assert st.cells_active + st.cells_grafted >= st.cells_total


def test_box_change_invalidates_signature():
    rng = np.random.default_rng(2)
    pos = rng.random((400, 3)) * 0.5 + 0.25
    cache = TreeCache()
    _step(cache, pos)
    got, ref = _step(cache, pos, box=BoundingBox(np.zeros(3), 2.0))
    assert cache.last.mode == "cold"
    _assert_trees_equal(got, ref)


def test_nleaf_change_invalidates_signature():
    rng = np.random.default_rng(3)
    pos = rng.random((400, 3)) * 0.98 + 0.01
    cache = TreeCache()
    _step(cache, pos, nleaf=16)
    got, ref = _step(cache, pos, nleaf=8)
    assert cache.last.mode == "cold"
    _assert_trees_equal(got, ref)


def test_epoch_bump_forces_cold_on_identical_keys():
    rng = np.random.default_rng(4)
    pos = rng.random((400, 3)) * 0.98 + 0.01
    cache = TreeCache()
    _step(cache, pos)
    cache.bump_epoch()
    got, ref = _step(cache, pos)
    assert cache.last.mode == "cold"
    _assert_trees_equal(got, ref)


def test_invalidate_drops_cached_tree():
    rng = np.random.default_rng(5)
    pos = rng.random((400, 3)) * 0.98 + 0.01
    cache = TreeCache()
    _step(cache, pos)
    cache.invalidate()
    _step(cache, pos)
    assert cache.last.mode == "cold"


def test_high_churn_falls_back_cold():
    rng = np.random.default_rng(6)
    pos = rng.random((600, 3)) * 0.98 + 0.01
    cache = TreeCache()
    _step(cache, pos)
    got, ref = _step(cache, rng.random((600, 3)) * 0.98 + 0.01)
    assert cache.last.mode == "cold"
    assert cache.last.churn > cache.churn_threshold
    _assert_trees_equal(got, ref)


# -- SortCache layout epochs (the stale-permutation hazard) ---------------

def test_sort_cache_epoch_change_prevents_stale_tiebreak():
    """After a relayout, tied keys repaired through the *old* permutation
    would come out in a different order than a cold stable sort -- the
    exact hazard the epoch tag exists to close."""
    keys1 = np.array([3, 1, 2, 1], dtype=np.uint64)
    keys2 = np.array([1, 1, 3, 2], dtype=np.uint64)
    cold = np.argsort(keys2, kind="stable")

    stale = SortCache()
    stale.order_for(keys1)
    repaired = stale.order_for(keys2)        # no epoch: demonstrates hazard
    assert stale.last_mode == "repair"
    assert not np.array_equal(repaired, cold)

    tagged = SortCache()
    tagged.order_for(keys1, epoch=0)
    fixed = tagged.order_for(keys2, epoch=1)  # relayout: epoch bumped
    assert tagged.last_mode in ("cold", "identity")
    assert np.array_equal(fixed, cold)


def test_sort_cache_same_epoch_preserves_reuse():
    rng = np.random.default_rng(7)
    keys = rng.integers(0, 2 ** 60, 1000).astype(np.uint64)
    sc = SortCache()
    o1 = sc.order_for(keys, epoch=3)
    o2 = sc.order_for(keys, epoch=3)
    assert sc.last_mode == "reuse"
    assert o2 is o1


def test_sort_cache_invalidate_clears_epoch():
    keys = np.array([2, 1], dtype=np.uint64)
    sc = SortCache()
    sc.order_for(keys, epoch=5)
    sc.invalidate()
    sc.order_for(keys, epoch=5)
    assert sc.last_mode == "cold"


def test_tree_cache_accepts_threshold():
    with pytest.raises(ValueError):
        TreeCache(churn_threshold=0.0)
    cache = TreeCache(churn_threshold=1e-12)
    rng = np.random.default_rng(8)
    pos = rng.random((300, 3)) * 0.98 + 0.01
    _step(cache, pos)
    pos2 = _drift(rng, pos, 1e-3)
    got, ref = _step(cache, pos2)
    # Near-zero tolerance: any octant churn at all falls back cold.
    assert cache.last.mode in ("cold", "reuse")
    _assert_trees_equal(got, ref)


def test_cached_octree_without_precomputed_keys():
    """keys/order are optional -- cached_octree derives them like
    build_octree does, so it is a true drop-in."""
    rng = np.random.default_rng(9)
    pos = rng.random((300, 3)) * 0.98 + 0.01
    cache = TreeCache()
    got = cached_octree(cache, pos, nleaf=8, box=BOX)
    ref = build_octree(pos, nleaf=8, box=BOX)
    _assert_trees_equal(got, ref)


def test_config_rejects_unknown_tree_reuse():
    from repro import SimulationConfig
    with pytest.raises(ValueError):
        SimulationConfig(tree_reuse="bogus")
    with pytest.raises(ValueError):
        SimulationConfig(let_drain="bogus")
