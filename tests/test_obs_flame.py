"""Flamegraph export: collapsed-stack folding and the fold-back invariant.

``export_collapsed`` turns the per-rank span streams into
flamegraph.pl/speedscope "collapsed" lines, reconstructing nesting by
time containment and attributing *self* time per frame.  The key
invariant (also asserted by ``--check`` in CI): the folded counts sum
back to the top-level span totals -- nothing gained, nothing lost.
"""

import json

import pytest

from repro.obs import (
    Tracer,
    VirtualClock,
    chrome_trace_json,
    collapsed_lines,
    export_collapsed,
    trace_events_from_doc,
)
from repro.obs.export import (
    check_collapsed,
    collapsed_stacks,
    fold_rank_stacks,
    main,
    rank_span_totals,
)


def _nested_tracer():
    """One rank, hand-built nesting:

    step [0, 10]
      ├─ gravity [1, 6]
      │    └─ kernel [2, 5]
      └─ comm [6, 9]

    Self times: step 2, gravity 2, kernel 3, comm 3.
    """
    tr = Tracer(clock=VirtualClock())
    tr.record("step", 0, 0.0, 10.0, cat="phase")
    tr.record("gravity", 0, 1.0, 6.0, cat="phase")
    tr.record("kernel", 0, 2.0, 5.0, cat="phase")
    tr.record("comm", 0, 6.0, 9.0, cat="comm")
    return tr


def test_fold_nested_self_times():
    stacks = fold_rank_stacks(_nested_tracer().events(), rank=0)
    assert stacks == pytest.approx({
        "step": 2.0,
        "step;gravity": 2.0,
        "step;gravity;kernel": 3.0,
        "step;comm": 3.0,
    })
    # Fold-back: self times sum to the root span's duration.
    assert sum(stacks.values()) == pytest.approx(10.0)


def test_fold_siblings_and_instants_ignored():
    tr = Tracer(clock=VirtualClock())
    tr.record("a", 0, 0.0, 2.0)
    tr.record("b", 0, 2.0, 5.0)   # sibling, touching boundary
    tr.instant("marker", 0)       # instants never fold
    stacks = fold_rank_stacks(tr.events(), rank=0)
    assert stacks == pytest.approx({"a": 2.0, "b": 3.0})


def test_rank_span_totals_and_slowest_mode():
    tr = Tracer(clock=VirtualClock())
    tr.record("step", 0, 0.0, 1.0)
    tr.record("step", 1, 0.0, 4.0)
    tr.record("inner", 1, 1.0, 2.0)
    totals = rank_span_totals(tr.events())
    assert totals == pytest.approx({0: 1.0, 1: 4.0})
    # Slowest mode picks rank 1 and drops the rank prefix.
    stacks = collapsed_stacks(tr, mode="slowest")
    assert stacks == pytest.approx({"step": 3.0, "step;inner": 1.0})
    # Explicit rank selection.
    assert collapsed_stacks(tr, rank=0) == pytest.approx({"step": 1.0})


def test_per_rank_mode_prefixes():
    tr = Tracer(clock=VirtualClock())
    tr.record("step", 0, 0.0, 1.0)
    tr.record("step", 1, 0.0, 2.0)
    stacks = collapsed_stacks(tr, mode="per-rank")
    assert stacks == pytest.approx({"rank 0;step": 1.0, "rank 1;step": 2.0})


def test_collapsed_lines_integer_microseconds():
    lines = collapsed_lines(_nested_tracer())
    assert lines == [
        "step 2000000",
        "step;comm 3000000",
        "step;gravity 2000000",
        "step;gravity;kernel 3000000",
    ]


def test_trace_doc_roundtrip():
    """Folding the Chrome-trace doc equals folding the tracer directly."""
    tr = _nested_tracer()
    doc = json.loads(chrome_trace_json(tr))
    events = trace_events_from_doc(doc)
    assert fold_rank_stacks(events, 0) == \
        pytest.approx(fold_rank_stacks(tr.events(), 0))
    assert collapsed_lines(doc) == collapsed_lines(tr)


def test_real_run_folds_back_to_span_totals():
    """Acceptance criterion: folded totals match the slowest rank's
    top-level span total on a genuine parallel run."""
    from repro import SimulationConfig
    from repro.core.parallel_simulation import run_parallel_simulation
    from repro.ics import plummer_model

    tracer = Tracer(clock=VirtualClock())
    run_parallel_simulation(2, plummer_model(400, seed=5),
                            SimulationConfig(theta=0.6), n_steps=2,
                            trace=tracer)
    check_collapsed(tracer, mode="slowest")       # raises on mismatch
    check_collapsed(tracer, mode="per-rank")
    totals = rank_span_totals(tracer.events())
    slowest = max(totals.values())
    folded = sum(collapsed_stacks(tracer, mode="slowest").values())
    assert folded == pytest.approx(slowest, rel=1e-9)


def test_check_collapsed_raises_outside_budget():
    # An impossible (negative) tolerance forces the mismatch branch,
    # proving --check actually fails closed rather than always passing.
    with pytest.raises(ValueError, match="collapsed stacks"):
        check_collapsed(_nested_tracer(), mode="slowest", tolerance=-1.0)


def test_export_collapsed_writes_file(tmp_path):
    out = tmp_path / "trace.folded"
    lines = export_collapsed(_nested_tracer(), out)
    assert out.read_text().splitlines() == lines


def test_cli_check_and_output(tmp_path, capsys):
    trace = tmp_path / "trace.json"
    trace.write_text(chrome_trace_json(_nested_tracer()))
    out = tmp_path / "trace.folded"
    assert main([str(trace), "--out", str(out), "--check"]) == 0
    assert "fold to" in capsys.readouterr().err
    assert out.read_text().splitlines() == collapsed_lines(_nested_tracer())
    # stdout mode
    assert main([str(trace)]) == 0
    assert capsys.readouterr().out.splitlines() == \
        collapsed_lines(_nested_tracer())
