"""Tests for the Sec. II state-of-the-art record table."""

import pytest

from repro.perfmodel.history import (
    RECORD_RUNS,
    history_rows,
    sustained_performance_growth,
    versus_previous_record,
)


def test_sec2_records_present():
    years = [r.year for r in RECORD_RUNS]
    assert years == sorted(years)
    by_year = {r.year: r for r in RECORD_RUNS}
    assert by_year[2009].sustained_tflops == 42.0        # "42 Tflops" [31]
    assert by_year[2010].sustained_tflops == 190.0       # "190 Tflops" [32]
    assert by_year[2012].sustained_tflops == 4450.0      # "4.45 Pflops" [10]
    assert by_year[2012].n_particles == pytest.approx(1e12)  # trillion-body
    assert by_year[2014].sustained_tflops == 24770.0     # this paper


def test_growth_factors():
    assert sustained_performance_growth() == pytest.approx(24770 / 42, rel=1e-6)
    # ~5.6x over the K-computer record two years earlier.
    assert versus_previous_record() == pytest.approx(5.57, abs=0.05)


def test_history_rows_render():
    rows = history_rows()
    assert rows[0][0] == "year"
    assert len(rows) == len(RECORD_RUNS) + 1
    assert any("Bonsai" in " ".join(r) for r in rows)


def test_direct_force_method_in_simulation():
    """The config's direct-summation oracle mode must integrate
    identically to a tiny-theta tree run."""
    import numpy as np
    from repro import Simulation, SimulationConfig
    from repro.ics import plummer_model

    ps = plummer_model(400, seed=118)
    direct = Simulation(ps.copy(), SimulationConfig(
        force_method="direct", softening=0.05, dt=0.02))
    direct.evolve(3)
    tree = Simulation(ps.copy(), SimulationConfig(
        theta=0.02, softening=0.05, dt=0.02))
    tree.evolve(3)
    assert np.allclose(direct.particles.pos, tree.particles.pos, atol=1e-9)
    assert direct.history[0].counts.n_pc == 0


def test_invalid_force_method():
    from repro import SimulationConfig
    with pytest.raises(ValueError):
        SimulationConfig(force_method="fmm")
