"""Tests for opening radii (MAC) and AABB distance helpers."""

import numpy as np
import pytest

from repro.octree import build_octree, compute_moments, compute_opening_radii
from repro.octree.properties import aabb_aabb_distance, aabb_distance


@pytest.fixture()
def tree():
    rng = np.random.default_rng(11)
    pos = rng.normal(size=(1000, 3))
    mass = np.ones(1000)
    t = build_octree(pos, nleaf=16)
    compute_moments(t, pos, mass)
    return t


def test_bh_radius_is_side_over_theta(tree):
    compute_opening_radii(tree, theta=0.5, mac="bh")
    assert np.allclose(tree.r_crit, 2.0 * tree.half / 0.5)


def test_bonsai_radius_adds_com_offset(tree):
    compute_opening_radii(tree, theta=0.5, mac="bh")
    bh = tree.r_crit.copy()
    compute_opening_radii(tree, theta=0.5, mac="bonsai")
    delta = np.linalg.norm(tree.com - tree.center, axis=1)
    assert np.allclose(tree.r_crit, bh + delta)
    assert np.all(tree.r_crit >= bh)


def test_smaller_theta_larger_radius(tree):
    compute_opening_radii(tree, theta=0.8)
    r8 = tree.r_crit.copy()
    compute_opening_radii(tree, theta=0.2)
    assert np.all(tree.r_crit >= r8)


def test_theta_zero_rejected(tree):
    with pytest.raises(ValueError):
        compute_opening_radii(tree, theta=0.0)


def test_unknown_mac_rejected(tree):
    with pytest.raises(ValueError):
        compute_opening_radii(tree, theta=0.5, mac="geometric")


def test_moments_required():
    t = build_octree(np.random.default_rng(0).uniform(size=(50, 3)))
    with pytest.raises(ValueError):
        compute_opening_radii(t, theta=0.5)


def test_aabb_distance_inside_is_zero():
    d = aabb_distance(np.zeros(3), np.ones(3), np.array([[0.5, 0.5, 0.5]]))
    assert d[0] == 0.0


def test_aabb_distance_face():
    d = aabb_distance(np.zeros(3), np.ones(3), np.array([[2.0, 0.5, 0.5]]))
    assert d[0] == pytest.approx(1.0)


def test_aabb_distance_corner():
    d = aabb_distance(np.zeros(3), np.ones(3), np.array([[2.0, 2.0, 2.0]]))
    assert d[0] == pytest.approx(np.sqrt(3.0))


def test_aabb_aabb_distance_overlap_zero():
    d = aabb_aabb_distance(np.zeros(3), np.ones(3),
                           np.array([0.5, 0.5, 0.5]), np.array([2.0, 2.0, 2.0]))
    assert d == 0.0


def test_aabb_aabb_distance_gap():
    d = aabb_aabb_distance(np.zeros(3), np.ones(3),
                           np.array([3.0, 0.0, 0.0]), np.array([4.0, 1.0, 1.0]))
    assert d == pytest.approx(2.0)


def test_aabb_distance_broadcasts_many_boxes():
    bmin = np.zeros((4, 3))
    bmax = np.ones((4, 3)) * np.arange(1, 5)[:, None]
    pts = np.full((4, 3), 10.0)
    d = aabb_distance(bmin, bmax, pts)
    expected = np.sqrt(3) * (10 - np.arange(1, 5))
    assert np.allclose(d, expected)
