"""Exporter tests: Chrome trace structure, JSONL, schema validation."""

import json

import pytest

from repro.obs import (
    Tracer,
    VirtualClock,
    chrome_trace_events,
    chrome_trace_json,
    jsonl_lines,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)


def _sample_tracer():
    tr = Tracer(clock=VirtualClock())
    with tr.span("gravity_local", rank=0, cat="phase", step=0) as sp:
        sp.add(n_pp=12)
    tr.flow("s", "0.1.11.0", rank=0, ts=0.5)
    tr.record("recv", 1, 0.0, 1.0, cat="comm", src=0)
    tr.flow("f", "0.1.11.0", rank=1, ts=0.0)
    tr.instant("fault_delay", rank=1, ts=0.25, cat="fault", dst=0)
    return tr


def test_chrome_events_have_rank_lanes_and_metadata():
    events = chrome_trace_events(_sample_tracer())
    meta = [e for e in events if e["ph"] == "M"]
    names = {(e["name"], e["tid"]) for e in meta}
    assert ("process_name", 0) in names
    assert ("thread_name", 0) in names and ("thread_name", 1) in names
    assert ("thread_sort_index", 1) in names
    lanes = {e["tid"] for e in events if e["ph"] != "M"}
    assert lanes == {0, 1}
    assert all(e["pid"] == 0 for e in events)


def test_chrome_events_units_and_flows():
    events = chrome_trace_events(_sample_tracer())
    x = next(e for e in events if e["ph"] == "X" and e["name"] == "gravity_local")
    assert x["dur"] > 0                       # microseconds
    assert x["args"]["n_pp"] == 12
    s = next(e for e in events if e["ph"] == "s")
    f = next(e for e in events if e["ph"] == "f")
    assert s["id"] == f["id"]
    assert f["bp"] == "e"
    i = next(e for e in events if e["ph"] == "i")
    assert i["s"] == "t" and i["cat"] == "fault"


def test_exclude_categories_drops_faults():
    events = chrome_trace_events(_sample_tracer(),
                                 exclude_categories=("fault",))
    assert not any(e.get("cat") == "fault" for e in events)


def test_timestamps_normalised_to_zero():
    tr = Tracer(clock=VirtualClock(start=100.0))
    tr.record("a", 0, 100.0, 101.0)
    events = chrome_trace_events(tr)
    x = next(e for e in events if e["ph"] == "X")
    assert x["ts"] == 0.0


def test_chrome_json_is_valid_and_canonical(tmp_path):
    tr = _sample_tracer()
    text = chrome_trace_json(tr)
    doc = json.loads(text)
    validate_chrome_trace(doc)
    assert doc["displayTimeUnit"] == "ms"
    path = tmp_path / "trace.json"
    write_chrome_trace(tr, path)
    assert path.read_text() == text
    assert validate_chrome_trace_file(path)["traceEvents"] == doc["traceEvents"]


def test_jsonl_roundtrip(tmp_path):
    tr = _sample_tracer()
    lines = jsonl_lines(tr)
    assert len(lines) == len(tr.events())
    recs = [json.loads(ln) for ln in lines]
    assert recs[0]["rank"] == 0 and recs[0]["seq"] == 0
    assert any(r.get("flow_id") for r in recs)
    path = tmp_path / "trace.jsonl"
    write_jsonl(tr, path)
    assert path.read_text().splitlines() == lines


@pytest.mark.parametrize("doc,msg", [
    ([], "traceEvents"),
    ({"traceEvents": {}}, "list"),
    ({"traceEvents": [{"ph": "Z", "name": "x", "cat": "c", "pid": 0,
                       "tid": 0, "ts": 0}]}, "unknown ph"),
    ({"traceEvents": [{"ph": "X", "name": 3, "cat": "c", "pid": 0,
                       "tid": 0, "ts": 0, "dur": 1}]}, "name"),
    ({"traceEvents": [{"ph": "X", "name": "x", "cat": "c", "pid": 0,
                       "tid": 0, "ts": 0, "dur": -1}]}, "dur"),
    ({"traceEvents": [{"ph": "s", "name": "x", "cat": "c", "pid": 0,
                       "tid": 0, "ts": 0}]}, "id"),
    ({"traceEvents": [{"ph": "X", "name": "x", "cat": "c", "pid": "0",
                       "tid": 0, "ts": 0, "dur": 1}]}, "pid"),
])
def test_validate_rejects_malformed(doc, msg):
    with pytest.raises(ValueError, match=msg):
        validate_chrome_trace(doc)
