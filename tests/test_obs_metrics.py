"""Metrics registry unit tests: counters, gauges, histograms, export."""

import pytest

from repro.obs import MetricsRegistry


def test_counter_inc_and_series():
    reg = MetricsRegistry()
    c = reg.counter("msgs_total", "messages", labelnames=("phase",))
    c.inc(phase="a")
    c.inc(2, phase="a")
    c.inc(5, phase="b")
    assert c.value(phase="a") == 3
    assert c.total() == 8
    assert c.series() == {("a",): 3, ("b",): 5}


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("c_total", "c")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth", "depth", labelnames=("rank",))
    g.set(5, rank=0)
    g.inc(rank=0)
    g.dec(3, rank=0)
    assert g.value(rank=0) == 3


def test_histogram_buckets_sum_count():
    reg = MetricsRegistry()
    h = reg.histogram("wait_seconds", "waits", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count() == 3
    assert h.sum() == pytest.approx(5.55)
    text = reg.render()
    assert 'wait_seconds_bucket{le="0.1"} 1' in text
    assert 'wait_seconds_bucket{le="1"} 2' in text
    assert 'wait_seconds_bucket{le="+Inf"} 3' in text
    assert "wait_seconds_count 3" in text


def test_get_or_create_same_object():
    reg = MetricsRegistry()
    a = reg.counter("x_total", "x", labelnames=("k",))
    b = reg.counter("x_total", "x", labelnames=("k",))
    assert a is b
    assert reg.get("x_total") is a
    assert "x_total" in reg.names()


def test_type_and_label_mismatch_rejected():
    reg = MetricsRegistry()
    reg.counter("m", "m", labelnames=("k",))
    with pytest.raises(ValueError):
        reg.gauge("m", "m", labelnames=("k",))
    with pytest.raises(ValueError):
        reg.counter("m", "m", labelnames=("other",))


def test_prometheus_render_format():
    reg = MetricsRegistry()
    c = reg.counter("traffic_bytes_total", "Bytes shipped",
                    labelnames=("phase",))
    c.inc(100, phase="let_exchange")
    g = reg.gauge("ranks", "rank count")
    g.set(4)
    text = reg.render()
    assert "# HELP traffic_bytes_total Bytes shipped" in text
    assert "# TYPE traffic_bytes_total counter" in text
    assert 'traffic_bytes_total{phase="let_exchange"} 100' in text
    assert "# TYPE ranks gauge" in text
    assert "ranks 4" in text


def test_unlabelled_metric_requires_no_labels():
    reg = MetricsRegistry()
    c = reg.counter("plain_total", "plain")
    c.inc()
    assert c.value() == 1
    with pytest.raises(ValueError):
        c.inc(rank=0)
