"""Tests for the disk-heating diagnostics."""

import numpy as np
import pytest

from repro.analysis.heating import DiskHeating, disk_heating_state, heating_rate
from repro.ics import milky_way_model
from repro.particles import COMPONENT_DISK


def _disk(n=5000, sigma_z=0.1, thickness=0.3, seed=95):
    rng = np.random.default_rng(seed)
    R = rng.uniform(2.0, 10.0, n)
    phi = rng.uniform(0, 2 * np.pi, n)
    pos = np.stack([R * np.cos(phi), R * np.sin(phi),
                    rng.normal(scale=thickness, size=n)], axis=1)
    vel = np.zeros((n, 3))
    vel[:, 2] = rng.normal(scale=sigma_z, size=n)
    # solid rotation plus radial noise
    vel[:, 0] = -np.sin(phi) + rng.normal(scale=0.05, size=n) * np.cos(phi)
    vel[:, 1] = np.cos(phi) + rng.normal(scale=0.05, size=n) * np.sin(phi)
    return pos, vel, np.ones(n)


def test_measures_injected_dispersions():
    pos, vel, mass = _disk(20000, sigma_z=0.17, thickness=0.4)
    s = disk_heating_state(pos, vel, mass)
    assert s.sigma_z == pytest.approx(0.17, rel=0.05)
    assert s.thickness == pytest.approx(0.4, rel=0.05)
    assert s.sigma_R == pytest.approx(0.05, rel=0.2)


def test_rotation_does_not_contaminate():
    """Pure rotation has zero sigma_R and sigma_z."""
    pos, vel, mass = _disk(5000, sigma_z=0.0, thickness=0.2)
    vel[:, 2] = 0.0
    R = np.hypot(pos[:, 0], pos[:, 1])
    vel[:, 0] = -pos[:, 1] / R
    vel[:, 1] = pos[:, 0] / R
    s = disk_heating_state(pos, vel, mass)
    assert s.sigma_z < 1e-12
    assert s.sigma_R < 1e-12


def test_empty_annulus():
    pos, vel, mass = _disk(100)
    s = disk_heating_state(pos, vel, mass, r_min=1e3, r_max=2e3)
    assert s == DiskHeating(0.0, 0.0, 0.0)


def test_heating_rate_linear_fit():
    states = [DiskHeating(sigma_z=np.sqrt(0.1 + 0.02 * t), thickness=0,
                          sigma_R=0) for t in range(5)]
    rate = heating_rate(states, np.arange(5))
    assert rate == pytest.approx(0.02, rel=1e-6)


def test_heating_rate_needs_two():
    with pytest.raises(ValueError):
        heating_rate([DiskHeating(1, 1, 1)], np.array([0.0]))


def test_heavy_halo_option_generates():
    ps_eq = milky_way_model(4000, seed=96, halo_mass_factor=1.0)
    ps_hv = milky_way_model(4000, seed=96, halo_mass_factor=8.0)
    halo_eq = ps_eq.select_component(2)
    halo_hv = ps_hv.select_component(2)
    # Same total halo mass (up to count rounding), ~8x fewer and ~8x
    # heavier particles.
    assert halo_hv.total_mass == pytest.approx(halo_eq.total_mass, rel=1e-3)
    assert halo_hv.n == pytest.approx(halo_eq.n / 8, rel=0.05)
    assert halo_hv.mass[0] == pytest.approx(8 * halo_eq.mass[0], rel=0.05)
    # Disk and bulge untouched.
    assert ps_hv.select_component(1).n == ps_eq.select_component(1).n


def test_invalid_halo_mass_factor():
    with pytest.raises(ValueError):
        milky_way_model(100, halo_mass_factor=0.5)
