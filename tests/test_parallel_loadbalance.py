"""Tests for weighted cuts with the 30% particle cap."""

import numpy as np
import pytest

from repro.parallel import cut_weighted_with_cap
from repro.parallel.loadbalance import domain_counts


def _keys(n, seed=41):
    return np.sort(np.random.default_rng(seed).integers(
        0, 2 ** 63, n, dtype=np.uint64))


def test_boundaries_shape_and_range():
    keys = _keys(1000)
    b = cut_weighted_with_cap(keys, np.ones(1000), 8)
    assert len(b) == 9
    assert b[0] == 0
    assert b[-1] == np.uint64(0xFFFFFFFFFFFFFFFF)
    assert np.all(np.diff(b.astype(np.float64)) >= 0)


def test_uniform_weights_give_even_counts():
    keys = _keys(10000)
    b = cut_weighted_with_cap(keys, np.ones(10000), 10)
    counts = domain_counts(keys, b)
    assert counts.sum() == 10000
    assert counts.max() < 1.15 * 1000
    assert counts.min() > 0.85 * 1000


def test_cost_weighting_shifts_boundaries():
    """Samples with heavy cost at low keys must shrink the low domains'
    key span."""
    keys = _keys(10000)
    cost = np.ones(10000)
    cost[:2000] = 50.0
    b = cut_weighted_with_cap(keys, cost, 4, cap_ratio=np.inf)
    counts = domain_counts(keys, b)
    # Low-key domains take fewer particles because each costs more.
    assert counts[0] < counts[-1]
    # The total cost per domain is roughly balanced.
    csum = np.cumsum(cost)
    dom = np.searchsorted(b[1:-1], keys, side="right")
    per_dom = np.bincount(dom, weights=cost, minlength=4)
    assert per_dom.max() / per_dom.min() < 1.6


def test_cap_limits_particle_count():
    """Even under extreme cost skew, no domain may exceed the 30% cap."""
    keys = _keys(8000)
    cost = np.ones(8000)
    cost[-10:] = 1e6  # nearly all cost in 10 samples
    b = cut_weighted_with_cap(keys, cost, 8, cap_ratio=1.3)
    counts = domain_counts(keys, b)
    assert counts.max() <= np.ceil(1.3 * 1000) + 1


def test_single_domain():
    keys = _keys(100)
    b = cut_weighted_with_cap(keys, np.ones(100), 1)
    assert len(b) == 2
    assert domain_counts(keys, b)[0] == 100


def test_empty_samples_uniform_split():
    b = cut_weighted_with_cap(np.empty(0, dtype=np.uint64), np.empty(0), 4)
    assert len(b) == 5
    assert np.all(np.diff(b.astype(np.float64)) > 0)


def test_empty_samples_uniform_split_stays_uint64_at_large_p():
    """The degenerate uniform split must do its arithmetic in uint64.

    A float64 detour (numpy's default promotion for int * uint64 scalar
    mixes) only has 53 mantissa bits, so at large n_domains the upper
    boundaries would round -- and equality with the exact integer grid
    would silently break.
    """
    p = 1 << 20
    b = cut_weighted_with_cap(np.empty(0, dtype=np.uint64), np.empty(0), p)
    assert b.dtype == np.uint64
    assert len(b) == p + 1
    span = int(np.uint64(0xFFFFFFFFFFFFFFFF)) // p
    assert int(b[1]) == span
    assert int(b[-2]) == (p - 1) * span
    # Monotone without wrap-around: compare as Python ints (float casts
    # would mask exactly the rounding this test pins down).
    db = np.diff(b.astype(object))
    assert all(int(d) >= 0 for d in db)


def test_extreme_skew_keeps_every_domain_nonempty():
    """One sample with ~all the cost must not collapse any domain to
    zero samples (a fault-slowed rank produces exactly this shape)."""
    keys = _keys(400)
    cost = np.ones(400)
    cost[137] = 1e9
    b = cut_weighted_with_cap(keys, cost, 8, cap_ratio=1.3)
    assert domain_counts(keys, b).min() >= 1


def test_zero_cost_falls_back_to_counts():
    keys = _keys(1000)
    b = cut_weighted_with_cap(keys, np.zeros(1000), 4)
    counts = domain_counts(keys, b)
    assert counts.max() < 1.3 * 250 + 1


def test_mismatched_lengths():
    with pytest.raises(ValueError):
        cut_weighted_with_cap(_keys(10), np.ones(9), 2)


def test_invalid_domain_count():
    with pytest.raises(ValueError):
        cut_weighted_with_cap(_keys(10), np.ones(10), 0)


def test_duplicate_keys_keep_boundaries_monotone():
    keys = np.sort(np.repeat(_keys(50), 40))
    b = cut_weighted_with_cap(keys, np.ones(len(keys)), 8)
    assert np.all(np.diff(b.astype(np.float64)) >= 0)
    assert domain_counts(keys, b).sum() == len(keys)
