"""Tests for the distributed force computation (the paper's core loop)."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.gravity import direct_forces, tree_forces
from repro.ics import milky_way_model, plummer_model
from repro.octree import build_octree, compute_moments, make_groups
from repro.parallel import distributed_forces, domain_update, exchange_particles
from repro.sfc import BoundingBox
from repro.simmpi import SimWorld, spmd_run


def _run_distributed(ps, cfg, n_ranks, world=None):
    """Decompose, exchange and compute forces; returns per-rank results."""
    box = BoundingBox.from_positions(ps.pos)
    n = ps.n

    def prog(comm):
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = ps.select(np.arange(lo, hi))
        keys = box.keys(local.pos, cfg.curve)
        order = np.argsort(keys)
        local.reorder(order)
        decomp = domain_update(comm, keys[order], rate2=0.1)
        local = exchange_particles(comm, local, keys[order], decomp)
        res = distributed_forces(comm, local, cfg, box)
        return local, res

    return spmd_run(n_ranks, prog, world=world)


def _assemble(results):
    ids = np.concatenate([r[0].ids for r in results])
    acc = np.concatenate([r[1].acc for r in results])
    phi = np.concatenate([r[1].phi for r in results])
    order = np.argsort(ids)
    return acc[order], phi[order]


@pytest.fixture(scope="module")
def plummer_case():
    ps = plummer_model(6000, seed=56)
    cfg = SimulationConfig(theta=0.5, softening=0.02, dt=0.01)
    acc_d, phi_d = direct_forces(ps.pos, ps.mass, eps=cfg.softening)
    return ps, cfg, acc_d, phi_d


@pytest.mark.parametrize("n_ranks", [2, 4, 7])
def test_matches_direct_any_rank_count(plummer_case, n_ranks):
    ps, cfg, acc_d, _ = plummer_case
    results = _run_distributed(ps, cfg, n_ranks)
    acc, _ = _assemble(results)
    err = np.linalg.norm(acc - acc_d, axis=1) / np.linalg.norm(acc_d, axis=1)
    assert np.median(err) < 5e-4
    assert err.max() < 0.05


def test_matches_single_rank_tree_accuracy(plummer_case):
    """The distributed walk must be as accurate as the serial tree."""
    ps, cfg, acc_d, _ = plummer_case
    results = _run_distributed(ps, cfg, 4)
    acc, _ = _assemble(results)
    tree = build_octree(ps.pos, nleaf=cfg.nleaf)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, cfg.ncrit)
    serial = tree_forces(tree, ps.pos, ps.mass, theta=cfg.theta,
                         eps=cfg.softening)
    err_par = np.median(np.linalg.norm(acc - acc_d, axis=1)
                        / np.linalg.norm(acc_d, axis=1))
    err_ser = np.median(np.linalg.norm(serial.acc - acc_d, axis=1)
                        / np.linalg.norm(acc_d, axis=1))
    assert err_par < 3.0 * err_ser


def test_potentials_match_direct(plummer_case):
    ps, cfg, _, phi_d = plummer_case
    results = _run_distributed(ps, cfg, 3)
    _, phi = _assemble(results)
    err = np.abs((phi - phi_d) / phi_d)
    assert np.median(err) < 1e-3


def test_interaction_counts_comparable_to_serial(plummer_case):
    ps, cfg, _, _ = plummer_case
    results = _run_distributed(ps, cfg, 4)
    pp = sum(r[1].counts_total.n_pp for r in results)
    pc = sum(r[1].counts_total.n_pc for r in results)
    tree = build_octree(ps.pos, nleaf=cfg.nleaf)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, cfg.ncrit)
    serial = tree_forces(tree, ps.pos, ps.mass, theta=cfg.theta,
                         eps=cfg.softening)
    assert pp == pytest.approx(serial.counts.n_pp, rel=0.15)
    assert pc == pytest.approx(serial.counts.n_pc, rel=0.25)


def test_let_traffic_recorded(plummer_case):
    ps, cfg, _, _ = plummer_case
    world = SimWorld(4)
    _run_distributed(ps, cfg, 4, world=world)
    s = world.traffic.summary()
    assert s["boundary_exchange"]["bytes"] > 0
    # With 4 ranks everyone is a near neighbour: full LETs flow.
    assert s["let_exchange"]["bytes"] > 0


def test_milky_way_distributed_forces():
    """The production workload shape: disk + bulge + halo geometry."""
    ps = milky_way_model(8000, seed=57)
    cfg = SimulationConfig(theta=0.5, softening=0.05, dt=0.1)
    results = _run_distributed(ps, cfg, 4)
    acc, _ = _assemble(results)
    acc_d, _ = direct_forces(ps.pos, ps.mass, eps=cfg.softening)
    err = np.linalg.norm(acc - acc_d, axis=1) / np.linalg.norm(acc_d, axis=1)
    assert np.median(err) < 1e-3


def test_lets_sent_count_reasonable(plummer_case):
    ps, cfg, _, _ = plummer_case
    results = _run_distributed(ps, cfg, 4)
    for _, res in results:
        assert 0 <= res.n_lets_sent <= 3
        assert res.n_lets_received == res.n_lets_sent  # symmetric checks


def test_empty_local_set_rejected():
    from repro.particles import ParticleSet

    def prog(comm):
        cfg = SimulationConfig()
        box = BoundingBox(origin=np.zeros(3), size=1.0)
        distributed_forces(comm, ParticleSet.empty(), cfg, box)

    with pytest.raises(RuntimeError):
        spmd_run(2, prog)
