"""Tests for the analysis toolkit (bar, surface density, kinematics)."""

import numpy as np
import pytest

from repro.analysis import (
    bar_strength,
    bar_strength_profile,
    density_profile,
    enclosed_mass_profile,
    pattern_speed,
    radial_surface_density,
    solar_neighborhood,
    surface_density_map,
    velocity_distribution,
    velocity_substructure_clumpiness,
)


def _axisymmetric_disk(n=20000, seed=67):
    rng = np.random.default_rng(seed)
    R = rng.exponential(2.5, n)
    phi = rng.uniform(0, 2 * np.pi, n)
    z = rng.normal(scale=0.1, size=n)
    pos = np.stack([R * np.cos(phi), R * np.sin(phi), z], axis=1)
    return pos, np.ones(n) / n


def _barred_disk(n=20000, bar_frac=0.4, angle=0.7, seed=68):
    rng = np.random.default_rng(seed)
    pos, mass = _axisymmetric_disk(n, seed)
    nb = int(bar_frac * n)
    # bar: elongated Gaussian along `angle`
    x = rng.normal(scale=3.0, size=nb)
    y = rng.normal(scale=0.5, size=nb)
    pos[:nb, 0] = x * np.cos(angle) - y * np.sin(angle)
    pos[:nb, 1] = x * np.sin(angle) + y * np.cos(angle)
    return pos, mass


def test_axisymmetric_disk_has_tiny_a2():
    pos, mass = _axisymmetric_disk()
    a2, _ = bar_strength(pos, mass, r_max=5.0)
    assert a2 < 0.05


def test_barred_disk_has_large_a2_and_correct_phase():
    pos, mass = _barred_disk(angle=0.7)
    a2, phase = bar_strength(pos, mass, r_max=5.0)
    assert a2 > 0.2
    assert phase == pytest.approx(0.7, abs=0.1)


def test_bar_strength_profile_peaks_inside():
    pos, mass = _barred_disk()
    r, prof = bar_strength_profile(pos, mass, r_max=12.0, bins=12)
    inner = prof[r < 4].max()
    outer = prof[r > 8].mean()
    assert inner > 3 * outer


def test_bar_strength_empty_annulus():
    pos, mass = _axisymmetric_disk(100)
    a2, phase = bar_strength(pos, mass, r_min=1e3, r_max=2e3)
    assert a2 == 0.0


def test_pattern_speed_recovered():
    """Rotate a synthetic bar at a known rate and recover Omega_p."""
    omega = 0.31
    times = np.linspace(0.0, 10.0, 21)
    phases = []
    for t in times:
        pos, mass = _barred_disk(angle=0.2 + omega * t, seed=69)
        _, ph = bar_strength(pos, mass, r_max=5.0)
        phases.append(ph)
    assert pattern_speed(np.array(phases), times) == pytest.approx(omega, rel=0.05)


def test_pattern_speed_needs_two_samples():
    with pytest.raises(ValueError):
        pattern_speed(np.array([0.1]), np.array([0.0]))


def test_surface_density_map_total_mass():
    pos, mass = _axisymmetric_disk()
    sigma, edges = surface_density_map(pos, mass, extent=30.0, bins=64)
    pixel_area = (60.0 / 64) ** 2
    assert sigma.sum() * pixel_area == pytest.approx(mass.sum(), rel=0.01)
    assert sigma.shape == (64, 64)


def test_surface_density_map_centrally_peaked():
    pos, mass = _axisymmetric_disk()
    sigma, _ = surface_density_map(pos, mass, extent=10.0, bins=32)
    assert sigma[15:17, 15:17].mean() > 5 * sigma[0, :].mean()


def test_radial_surface_density_exponential():
    # Sigma(R) ~ exp(-R/Rd) requires p(R) ~ R exp(-R/Rd) = Gamma(2, Rd).
    rng = np.random.default_rng(73)
    n = 100000
    R = rng.gamma(2.0, 2.5, n)
    phi = rng.uniform(0, 2 * np.pi, n)
    pos = np.stack([R * np.cos(phi), R * np.sin(phi), np.zeros(n)], axis=1)
    mass = np.ones(n) / n
    Rc, sigma = radial_surface_density(pos, mass, r_max=12.0, bins=24)
    sel = (Rc > 1) & (Rc < 9) & (sigma > 0)
    slope = np.polyfit(Rc[sel], np.log(sigma[sel]), 1)[0]
    assert slope == pytest.approx(-1.0 / 2.5, rel=0.1)


def test_solar_neighborhood_selection():
    pos = np.array([[8.0, 0.0, 0.0], [8.3, 0.0, 0.0], [0.0, 0.0, 0.0],
                    [8.0, 0.0, 0.6]])
    idx = solar_neighborhood(pos, None, r_sun=8.0, radius=0.5)
    assert set(idx) == {0, 1}
    idx_cyl = solar_neighborhood(pos, None, r_sun=8.0, radius=0.5, z_max=0.2)
    assert set(idx_cyl) == {0, 1}


def test_velocity_distribution_rotation_subtraction():
    n = 1000
    rng = np.random.default_rng(70)
    pos = np.tile([8.0, 0.0, 0.0], (n, 1)) + rng.normal(scale=0.1, size=(n, 3))
    vel = np.zeros((n, 3))
    vel[:, 1] = 1.0 + rng.normal(scale=0.05, size=n)  # pure rotation at phi=0
    idx = np.arange(n)
    v_r, v_phi = velocity_distribution(pos, vel, idx)
    assert abs(np.mean(v_phi)) < 1e-10
    assert np.std(v_r) < 0.2
    v_r2, v_phi2 = velocity_distribution(pos, vel, idx, subtract_rotation=False)
    assert np.mean(v_phi2) == pytest.approx(1.0, abs=0.05)


def test_clumpiness_detects_moving_groups():
    rng = np.random.default_rng(71)
    n = 4000
    smooth = rng.normal(scale=30.0, size=(n, 2))
    clumpy = smooth.copy()
    # inject two moving groups
    clumpy[:400] = rng.normal(scale=3.0, size=(400, 2)) + [25, 20]
    clumpy[400:800] = rng.normal(scale=3.0, size=(400, 2)) + [-30, 10]
    c_smooth = velocity_substructure_clumpiness(smooth[:, 0], smooth[:, 1])
    c_clumpy = velocity_substructure_clumpiness(clumpy[:, 0], clumpy[:, 1])
    assert c_clumpy > 3 * max(c_smooth, 0.1)


def test_clumpiness_requires_enough_particles():
    with pytest.raises(ValueError):
        velocity_substructure_clumpiness(np.zeros(10), np.zeros(10))


def test_enclosed_mass_profile():
    pos = np.array([[1.0, 0, 0], [0, 2.0, 0], [0, 0, 3.0]])
    mass = np.array([1.0, 2.0, 4.0])
    m = enclosed_mass_profile(pos, mass, np.array([0.5, 1.5, 2.5, 3.5]))
    assert np.allclose(m, [0.0, 1.0, 3.0, 7.0])


def test_density_profile_uniform_sphere():
    rng = np.random.default_rng(72)
    n = 200000
    pos = rng.normal(size=(n, 3))
    pos /= np.linalg.norm(pos, axis=1)[:, None]
    pos *= rng.uniform(0, 1, n)[:, None] ** (1 / 3)
    mass = np.full(n, 1.0 / n)
    r, rho = density_profile(pos, mass, np.linspace(0.1, 1.0, 10))
    expected = 1.0 / (4.0 / 3.0 * np.pi)
    # Inner bins carry few particles; 10% absorbs their Poisson noise.
    assert np.allclose(rho, expected, rtol=0.10)
