"""Tests for the p-p and p-c force kernels (Eqs. 1-2 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gravity import pc_interactions, pp_interactions
from repro.gravity.kernels import point_forces_on_targets


def test_pp_inverse_square_law():
    ax, ay, az, phi = pp_interactions(np.array([2.0]), np.array([0.0]),
                                      np.array([0.0]), np.array([3.0]), 0.0)
    assert phi[0] == pytest.approx(-1.5)
    assert ax[0] == pytest.approx(3.0 * 2.0 / 8.0)
    assert ay[0] == 0.0 and az[0] == 0.0


def test_pp_attractive_direction():
    """Acceleration points from target toward source (dx = x_j - x_i)."""
    ax, _, _, _ = pp_interactions(np.array([-1.0]), np.array([0.0]),
                                  np.array([0.0]), np.array([1.0]), 0.0)
    assert ax[0] < 0.0


def test_pp_softening_limits_force():
    eps2 = 0.01
    ax, _, _, phi = pp_interactions(np.array([1e-8]), np.array([0.0]),
                                    np.array([0.0]), np.array([1.0]), eps2)
    assert abs(ax[0]) < 1e-3
    assert phi[0] == pytest.approx(-1.0 / np.sqrt(eps2), rel=1e-6)


def test_pc_monopole_matches_pp():
    """Zero quadrupole reduces the p-c kernel to the p-p kernel."""
    rng = np.random.default_rng(14)
    d = rng.normal(size=(100, 3)) * 3
    m = rng.uniform(0.1, 2.0, 100)
    q = np.zeros((100, 6))
    pc = pc_interactions(d[:, 0], d[:, 1], d[:, 2], m, q, 0.01)
    pp = pp_interactions(d[:, 0], d[:, 1], d[:, 2], m, 0.01)
    for a, b in zip(pc, pp):
        assert np.allclose(a, b, rtol=1e-12)


def test_pc_acceleration_is_gradient_of_potential():
    """Eq. (2) must be exactly -grad of Eq. (1): verified numerically."""
    rng = np.random.default_rng(15)
    q6 = rng.normal(size=6) * 0.1
    q6[:3] = np.abs(q6[:3]) + 0.2  # keep it PSD-ish
    m = np.array([2.0])
    quad = q6[None, :]
    target = np.array([1.3, -0.7, 2.1])
    source = np.array([4.0, 1.0, -1.0])
    h = 1e-6

    def potential(t):
        d = source - t
        return pc_interactions(np.array([d[0]]), np.array([d[1]]),
                               np.array([d[2]]), m, quad, 0.0)[3][0]

    d0 = source - target
    ax, ay, az, _ = pc_interactions(np.array([d0[0]]), np.array([d0[1]]),
                                    np.array([d0[2]]), m, quad, 0.0)
    grad = np.zeros(3)
    for k in range(3):
        e = np.zeros(3)
        e[k] = h
        grad[k] = (potential(target + e) - potential(target - e)) / (2 * h)
    acc = np.array([ax[0], ay[0], az[0]])
    assert np.allclose(acc, -grad, rtol=1e-5, atol=1e-8)


def test_pc_quadrupole_improves_cell_approximation():
    """A particle cluster approximated with quadrupole must beat the
    monopole-only approximation at moderate distance."""
    rng = np.random.default_rng(16)
    cluster = rng.normal(size=(200, 3)) * 0.5
    masses = rng.uniform(0.5, 1.0, 200)
    com = (masses[:, None] * cluster).sum(0) / masses.sum()
    d = cluster - com
    quad = np.array([
        np.sum(masses * d[:, 0] * d[:, 0]),
        np.sum(masses * d[:, 1] * d[:, 1]),
        np.sum(masses * d[:, 2] * d[:, 2]),
        np.sum(masses * d[:, 0] * d[:, 1]),
        np.sum(masses * d[:, 0] * d[:, 2]),
        np.sum(masses * d[:, 1] * d[:, 2]),
    ])[None, :]
    target = np.array([[4.0, 0.5, -0.3]])
    exact_acc, exact_phi = point_forces_on_targets(target, cluster, masses, 0.0)
    dx = com - target[0]
    mono = pp_interactions(np.array([dx[0]]), np.array([dx[1]]),
                           np.array([dx[2]]), np.array([masses.sum()]), 0.0)
    quadr = pc_interactions(np.array([dx[0]]), np.array([dx[1]]),
                            np.array([dx[2]]), np.array([masses.sum()]),
                            quad, 0.0)
    err_mono = abs(mono[3][0] - exact_phi[0])
    err_quad = abs(quadr[3][0] - exact_phi[0])
    assert err_quad < err_mono
    a_mono = np.array([mono[0][0], mono[1][0], mono[2][0]])
    a_quad = np.array([quadr[0][0], quadr[1][0], quadr[2][0]])
    assert np.linalg.norm(a_quad - exact_acc[0]) < np.linalg.norm(a_mono - exact_acc[0])


@settings(max_examples=50, deadline=None)
@given(st.floats(0.5, 50.0), st.floats(-1.0, 1.0), st.floats(0.01, 10.0))
def test_property_pp_magnitude(r, cosang, m):
    """Hypothesis: |a| = m / (r^2 + eps^2)^(3/2) * r for any geometry."""
    sinang = np.sqrt(1 - cosang ** 2)
    dx, dy, dz = r * cosang, r * sinang, 0.0
    eps2 = 0.25
    ax, ay, az, phi = pp_interactions(np.array([dx]), np.array([dy]),
                                      np.array([dz]), np.array([m]), eps2)
    a = np.sqrt(ax[0] ** 2 + ay[0] ** 2 + az[0] ** 2)
    assert a == pytest.approx(m * r / (r * r + eps2) ** 1.5, rel=1e-10)
    assert phi[0] == pytest.approx(-m / np.sqrt(r * r + eps2), rel=1e-10)


def test_point_forces_on_targets_chunks_consistently():
    rng = np.random.default_rng(17)
    src = rng.normal(size=(500, 3))
    m = rng.uniform(size=500)
    tgt = rng.normal(size=(50, 3))
    a1, p1 = point_forces_on_targets(tgt, src, m, 0.01)
    # brute force
    d = src[None] - tgt[:, None]
    r2 = (d ** 2).sum(-1) + 0.01
    rinv = 1 / np.sqrt(r2)
    p2 = -(m * rinv).sum(1)
    a2 = np.einsum("ij,ijk->ik", m * rinv ** 3, d)
    assert np.allclose(a1, a2)
    assert np.allclose(p1, p2)


def test_pc_none_quad_takes_monopole_branch():
    """quad=None dispatches to the 23-flop p-p kernel: bitwise equal to
    both a quad of zeros through the 65-flop path (numerically) and to
    pp_interactions (exactly)."""
    rng = np.random.default_rng(21)
    d = rng.normal(size=(200, 3)) * 3
    m = rng.uniform(0.1, 2.0, 200)
    mono = pc_interactions(d[:, 0], d[:, 1], d[:, 2], m, None, 0.01)
    pp = pp_interactions(d[:, 0], d[:, 1], d[:, 2], m, 0.01)
    for a, b in zip(mono, pp):
        assert np.array_equal(a, b)
    zeroq = pc_interactions(d[:, 0], d[:, 1], d[:, 2], m,
                            np.zeros((200, 6)), 0.01)
    for a, b in zip(mono, zeroq):
        assert np.allclose(a, b, rtol=1e-12)


def test_workspace_kernels_match_allocating_forms():
    from repro.gravity.kernels import pc_interactions_ws, pp_interactions_ws
    rng = np.random.default_rng(22)
    n = 300
    d = rng.normal(size=(n, 3)) * 3
    m = rng.uniform(0.1, 2.0, n)
    q = rng.normal(size=(n, 6)) * 0.1
    eps2 = 0.01

    ref = pp_interactions(d[:, 0], d[:, 1], d[:, 2], m, eps2)
    buf = [c.copy() for c in (d[:, 0], d[:, 1], d[:, 2], m)]
    got = pp_interactions_ws(*buf, eps2, np.empty(n), np.empty(n))
    # The ws form associates mrinv3 differently: ulp-equal, not bitwise.
    for a, b in zip(got, ref):
        assert np.allclose(a, b, rtol=1e-14, atol=0)

    ref = pc_interactions(d[:, 0], d[:, 1], d[:, 2], m, q, eps2)
    buf = [c.copy() for c in (d[:, 0], d[:, 1], d[:, 2], m)]
    qcols = tuple(q[:, i].copy() for i in range(6))
    scratch = [np.empty(n) for _ in range(6)]
    got = pc_interactions_ws(*buf, qcols, eps2, *scratch)
    for a, b in zip(got, ref):
        assert np.allclose(a, b, rtol=1e-13, atol=1e-15)
