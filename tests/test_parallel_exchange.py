"""Tests for the particle exchange."""

import numpy as np
import pytest

from repro.ics import plummer_model
from repro.parallel import DomainDecomposition, exchange_particles
from repro.sfc import BoundingBox
from repro.simmpi import spmd_run


def _run_exchange(n_ranks=4, n=2000):
    ps = plummer_model(n, seed=50)
    box = BoundingBox.from_positions(ps.pos)

    def prog(comm):
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = ps.select(np.arange(lo, hi))
        keys = box.keys(local.pos)
        # quantile-based decomposition from globally gathered keys
        all_keys = np.sort(np.concatenate(comm.allgather(keys)))
        edges = np.zeros(comm.size + 1, dtype=np.uint64)
        edges[-1] = np.uint64(0xFFFFFFFFFFFFFFFF)
        for d in range(1, comm.size):
            edges[d] = all_keys[len(all_keys) * d // comm.size]
        decomp = DomainDecomposition(boundaries=edges)
        new_local = exchange_particles(comm, local, keys, decomp)
        # verify ownership
        new_keys = box.keys(new_local.pos)
        assert np.all(decomp.rank_of_keys(new_keys) == comm.rank)
        return new_local

    return ps, spmd_run(n_ranks, prog)


def test_every_particle_delivered_once():
    ps, results = _run_exchange()
    ids = np.concatenate([r.ids for r in results])
    assert len(ids) == ps.n
    assert np.array_equal(np.sort(ids), np.sort(ps.ids))


def test_particle_data_preserved():
    ps, results = _run_exchange()
    full = np.concatenate([r.pos for r in results])
    ids = np.concatenate([r.ids for r in results])
    order = np.argsort(ids)
    assert np.allclose(full[order], ps.pos)
    vels = np.concatenate([r.vel for r in results])[order]
    assert np.allclose(vels, ps.vel)
    masses = np.concatenate([r.mass for r in results])[order]
    assert np.allclose(masses, ps.mass)


def test_counts_roughly_balanced():
    ps, results = _run_exchange()
    counts = np.array([r.n for r in results])
    assert counts.sum() == ps.n
    assert counts.max() < 1.3 * counts.mean()


def test_size_mismatch_raises():
    ps = plummer_model(100, seed=51)
    box = BoundingBox.from_positions(ps.pos)

    def prog(comm):
        keys = box.keys(ps.pos)
        bad = DomainDecomposition(
            boundaries=np.array([0, 2 ** 63, 2 ** 64 - 1], dtype=np.uint64))
        exchange_particles(comm, ps, keys, bad)

    with pytest.raises(RuntimeError):
        spmd_run(3, prog)
