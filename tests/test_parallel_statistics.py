"""Tests for the run-statistics aggregation."""

import numpy as np
import pytest

from repro.core.step import StepBreakdown
from repro.gravity.flops import InteractionCounts
from repro.parallel import aggregate_rank_histories


def _bd(gl, pp, pc):
    return StepBreakdown(gravity_local=gl,
                         counts=InteractionCounts(n_pp=pp, n_pc=pc))


def test_phase_times_take_rank_maximum():
    histories = [[_bd(1.0, 10, 1)], [_bd(3.0, 10, 1)]]
    stats = aggregate_rank_histories(histories, [100, 100])
    assert stats.mean_step.gravity_local == pytest.approx(3.0)


def test_counts_summed_over_ranks():
    histories = [[_bd(1.0, 10, 5)], [_bd(1.0, 30, 15)]]
    stats = aggregate_rank_histories(histories, [100, 100])
    assert stats.mean_step.counts.n_pp == 40
    assert stats.mean_step.counts.n_pc == 20
    assert stats.interactions_per_particle == (40 / 200, 20 / 200)


def test_step_averaging():
    histories = [[_bd(1.0, 100, 0), _bd(3.0, 300, 0)]]
    stats = aggregate_rank_histories(histories, [10])
    assert stats.mean_step.gravity_local == pytest.approx(2.0)
    assert stats.mean_step.counts.n_pp == 200


def test_imbalance():
    histories = [[_bd(1, 1, 1)], [_bd(1, 1, 1)], [_bd(1, 1, 1)]]
    stats = aggregate_rank_histories(histories, [100, 100, 130])
    assert stats.imbalance == pytest.approx(130 / 110)


def test_recv_wait_max():
    histories = [[_bd(1, 1, 1)], [_bd(1, 1, 1)]]
    stats = aggregate_rank_histories(histories, [1, 1],
                                     recv_waits=[0.1, 0.4])
    assert stats.recv_wait_max == pytest.approx(0.4)


def test_gflops_total():
    bd = _bd(2.0, 10 ** 9, 0)
    stats = aggregate_rank_histories([[bd]], [1000])
    assert stats.gpu_gflops_total == pytest.approx(23 * 10 ** 9 / 2.0 / 1e9)


def test_empty_history_raises():
    with pytest.raises(ValueError):
        aggregate_rank_histories([], [])


def test_real_parallel_run_aggregation():
    """End-to-end: aggregate an actual 2-rank simulation."""
    from repro import SimulationConfig
    from repro.core.parallel_simulation import run_parallel_simulation
    from repro.ics import plummer_model

    ps = plummer_model(1500, seed=93)
    cfg = SimulationConfig(theta=0.6, softening=0.05, dt=0.02)
    sims = run_parallel_simulation(2, ps, cfg, n_steps=2)
    stats = aggregate_rank_histories([s.history for s in sims],
                                     [s.particles.n for s in sims])
    assert stats.n_ranks == 2
    assert stats.n_particles_total == 1500
    assert stats.mean_step.gravity_local > 0
    assert stats.interactions_per_particle[0] > 10
    assert stats.imbalance < 1.35
