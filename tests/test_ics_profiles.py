"""Tests for the analytic density profiles."""

import numpy as np
import pytest
from scipy import integrate

from repro.ics import ExponentialDisk, HernquistProfile, NFWProfile, PlummerProfile


@pytest.fixture()
def nfw():
    return NFWProfile(mass=60.0, scale_radius=20.0, r_cut=250.0)


@pytest.fixture()
def hern():
    return HernquistProfile(mass=0.46, scale_radius=0.7, r_cut=4.0)


@pytest.fixture()
def disk():
    return ExponentialDisk(mass=5.0, scale_length=2.5, scale_height=0.3,
                           r_cut=25.0)


def _mass_from_density(profile, r):
    """Integrate 4 pi s^2 rho(s) ds numerically up to r."""
    val, _ = integrate.quad(lambda s: 4 * np.pi * s * s * profile.density(np.array([s]))[0],
                            0.0, r, limit=200)
    return val


@pytest.mark.parametrize("r", [1.0, 10.0, 100.0])
def test_nfw_density_integrates_to_enclosed_mass(nfw, r):
    assert _mass_from_density(nfw, r) == pytest.approx(
        float(nfw.enclosed_mass(np.array([r]))[0]), rel=1e-6)


def test_nfw_total_mass_at_cutoff(nfw):
    assert float(nfw.enclosed_mass(np.array([nfw.r_cut]))[0]) == pytest.approx(60.0)
    assert float(nfw.enclosed_mass(np.array([1e4]))[0]) == pytest.approx(60.0)


def test_nfw_density_zero_beyond_cutoff(nfw):
    assert nfw.density(np.array([300.0]))[0] == 0.0


def test_nfw_inner_slope(nfw):
    """rho ~ r^-1 in the center."""
    r = np.array([0.1, 0.2])
    rho = nfw.density(r)
    slope = np.log(rho[1] / rho[0]) / np.log(2.0)
    assert slope == pytest.approx(-1.0, abs=0.05)


def test_nfw_mass_fraction_normalised(nfw):
    assert float(nfw.mass_fraction(np.array([nfw.r_cut]))[0]) == pytest.approx(1.0)


@pytest.mark.parametrize("r", [0.5, 2.0])
def test_hernquist_density_integrates_to_mass(hern, r):
    assert _mass_from_density(hern, r) == pytest.approx(
        float(hern.enclosed_mass(np.array([r]))[0]), rel=1e-6)


def test_hernquist_half_mass_radius(hern):
    """M(<a(1+sqrt(2))) = M/2 for Hernquist."""
    r_half = hern.scale_radius * (1 + np.sqrt(2.0))
    assert float(hern.enclosed_mass(np.array([r_half]))[0]) == pytest.approx(
        0.5 * hern.mass, rel=1e-6)


def test_hernquist_potential_is_minus_m_over_r_plus_a(hern):
    phi = hern.potential(np.array([1.0]))[0]
    assert phi == pytest.approx(-0.46 / 1.7)


def test_plummer_relations():
    p = PlummerProfile(mass=1.0, scale_radius=2.0)
    # half-mass radius: r = a / sqrt(2^(2/3) - 1)
    r_half = 2.0 / np.sqrt(2 ** (2.0 / 3.0) - 1)
    assert float(p.enclosed_mass(np.array([r_half]))[0]) == pytest.approx(0.5, rel=1e-9)
    assert p.potential(np.array([0.0]))[0] == pytest.approx(-0.5)


def test_disk_enclosed_mass_converges(disk):
    assert float(disk.enclosed_mass(np.array([25.0]))[0]) == pytest.approx(
        5.0 * (1 - (1 + 10.0) * np.exp(-10.0)), rel=1e-9)


def test_disk_surface_density_scale(disk):
    s0 = disk.surface_density(np.array([0.0]))[0]
    s1 = disk.surface_density(np.array([2.5]))[0]
    assert s1 / s0 == pytest.approx(np.exp(-1.0))


def test_disk_circular_velocity_peak_location(disk):
    """Freeman disk: v_c peaks near 2.2 scale lengths."""
    R = np.linspace(0.5, 12.0, 400)
    vc2 = disk.circular_velocity_squared(R)
    peak = R[np.argmax(vc2)]
    assert peak == pytest.approx(2.2 * 2.5, rel=0.08)


def test_disk_circular_velocity_keplerian_far_field(disk):
    """At large R, v_c^2 -> G M / R."""
    R = np.array([200.0])
    vc2 = disk.circular_velocity_squared(R)[0]
    assert vc2 == pytest.approx(5.0 / 200.0, rel=0.05)


def test_disk_height_sampling(disk):
    rng = np.random.default_rng(29)
    z = disk.sample_height(rng, 20000)
    assert abs(np.mean(z)) < 0.02
    assert np.mean(np.abs(z)) == pytest.approx(0.3, rel=0.05)
