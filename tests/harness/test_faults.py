"""Fault-injection harness tests: schedule DSL + FaultyWorld semantics.

The headline acceptance scenario lives here: a seeded
delay+reorder+duplicate schedule must be *transparent* to a 4-rank
``ParallelSimulation`` (forces match the fault-free run to machine
precision, logical traffic identical), while an injected rank crash
must surface as a typed ``RankFailedError`` well within the configured
timeout instead of hanging.
"""

import time

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import gather_particles, run_parallel_simulation
from repro.faults import FaultSchedule, FaultSpec, FaultyWorld, parse_schedule
from repro.ics import plummer_model
from repro.simmpi import RankFailedError, spmd_run
from repro.testing import max_rel_difference, parallel_forces

#: The acceptance-criteria schedule: every maskable fault kind at once.
MASKABLE = "delay(prob=0.3, max=1ms); reorder(prob=0.5); duplicate(prob=0.25)"


@pytest.fixture(scope="module")
def ps():
    return plummer_model(1536, seed=11)


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(theta=0.5, softening=0.02, dt=0.01)


# -- DSL ------------------------------------------------------------------

def test_dsl_parse_and_roundtrip():
    s = parse_schedule(
        "delay(prob=0.3, max=2ms); reorder(p=0.5, src=1, dst=0); "
        "duplicate(prob=0.2, tag=3); crash(rank=2, after=40); "
        "slowdown(rank=1, sleep=0.5ms)")
    kinds = [spec.kind for spec in s.specs]
    assert kinds == ["delay", "reorder", "duplicate", "crash", "slowdown"]
    assert s.specs[0].max_delay == pytest.approx(2e-3)
    assert s.specs[1].matches(1, 0, 99) and not s.specs[1].matches(0, 1, 99)
    assert s.crash_for(2).after == 40 and s.crash_for(0) is None
    assert s.slowdown_for(1).max_delay == pytest.approx(5e-4)
    # describe() is canonical DSL text and round-trips
    assert FaultSchedule.parse(s.describe()) == s


@pytest.mark.parametrize("bad", [
    "explode(prob=1)",                 # unknown kind
    "delay(prob=1.5)",                 # prob out of range
    "delay(max=-1ms)",                 # negative duration
    "crash(after=3)",                  # crash without a rank
    "crash(rank=1, after=0)",          # after < 1
    "delay(prob=0.1, wibble=2)",       # unknown parameter
    "delay prob=0.1",                  # malformed clause
    "delay(max=2 parsecs)",            # malformed duration
])
def test_dsl_rejects_malformed_schedules(bad):
    with pytest.raises(ValueError):
        parse_schedule(bad)


def test_schedule_of_specs_equivalent_to_parse():
    a = FaultSchedule.of(FaultSpec("reorder", prob=0.5),
                         FaultSpec("crash", rank=1, after=10))
    b = parse_schedule("reorder(prob=0.5); crash(rank=1, after=10)")
    assert a == b


# -- acceptance: maskable faults are transparent --------------------------

def test_seeded_fault_schedule_matches_fault_free_run(ps, cfg):
    """Delay+reorder+duplicate at 4 ranks: forces to machine precision,
    logical traffic byte-identical, and every fault kind actually fired."""
    acc_clean, phi_clean = parallel_forces(ps, cfg, 4)

    world = FaultyWorld(4, MASKABLE, seed=123, timeout=60.0)
    acc_faulty, phi_faulty = parallel_forces(ps, cfg, 4, world=world)

    assert max_rel_difference(acc_faulty, acc_clean) < 1e-12
    assert np.max(np.abs(phi_faulty - phi_clean)
                  / (np.abs(phi_clean) + 1e-300)) < 1e-12
    # the schedule was not a no-op
    for kind in ("delay", "reorder", "duplicate"):
        assert world.stats.count(kind) > 0, f"{kind} never fired"

    from repro.simmpi import SimWorld
    clean = SimWorld(4, timeout=60.0)
    parallel_forces(ps, cfg, 4, world=clean)
    assert world.traffic.total_bytes == clean.traffic.total_bytes
    assert dict(world.traffic.p2p_bytes) == dict(clean.traffic.p2p_bytes)


def test_fault_injection_is_deterministic(ps, cfg):
    """Same (schedule, seed) -> identical injection counts."""
    counts = []
    for _ in range(2):
        w = FaultyWorld(4, MASKABLE, seed=7, timeout=60.0)
        parallel_forces(ps, cfg, 4, world=w)
        counts.append({k: w.stats.count(k)
                       for k in ("delay", "reorder", "duplicate")})
    assert counts[0] == counts[1]


def test_slowdown_is_transparent(ps, cfg):
    acc_clean, _ = parallel_forces(ps, cfg, 4)
    w = FaultyWorld(4, "slowdown(rank=1, sleep=0.2ms)", timeout=60.0)
    acc_slow, _ = parallel_forces(ps, cfg, 4, world=w)
    assert max_rel_difference(acc_slow, acc_clean) < 1e-12
    assert w.stats.count("slowdown") > 0


@pytest.mark.harness_slow
def test_multi_step_evolution_under_faults(ps, cfg):
    """Three full KDK steps (two redistributes each) under the maskable
    schedule: final positions match the fault-free evolution."""
    sims = run_parallel_simulation(4, ps.copy(), cfg, n_steps=3)
    clean = gather_particles(sims)
    world = FaultyWorld(4, MASKABLE, seed=321, timeout=120.0)
    sims_f = run_parallel_simulation(4, ps.copy(), cfg, n_steps=3, world=world,
                                     invariant_checks=True)
    faulty = gather_particles(sims_f)
    scale = np.linalg.norm(clean.pos, axis=1).mean()
    assert np.max(np.linalg.norm(faulty.pos - clean.pos, axis=1)) < 1e-12 * scale


# -- acceptance: crashes surface as typed errors fast ---------------------

@pytest.mark.parametrize("victim", [0, 2])
def test_rank_crash_raises_rank_failed_error(ps, cfg, victim):
    world = FaultyWorld(4, f"crash(rank={victim}, after=12)", timeout=8.0)
    t0 = time.monotonic()
    with pytest.raises(RankFailedError) as ei:
        parallel_forces(ps, cfg, 4, world=world, timeout=60.0)
    elapsed = time.monotonic() - t0
    assert ei.value.failed_rank == victim
    assert elapsed < 30.0, f"crash took {elapsed:.1f}s to surface"
    assert world.stats.crashed_ranks == [victim]


def test_crash_point_is_deterministic():
    """The op-counted crash trigger fires at the same program point
    regardless of thread scheduling."""
    def prog(comm):
        for i in range(20):
            comm.allgather(comm.rank * 100 + i)
        return "done"

    ops = []
    for _ in range(2):
        world = FaultyWorld(3, "crash(rank=1, after=9)", timeout=5.0)
        with pytest.raises(RankFailedError):
            spmd_run(3, prog, world=world, timeout=30.0)
        ops.append(world._op_count[1])
    assert ops[0] == ops[1] == 9


# -- parity: same adversary on the process transport ----------------------
#
# The fault lottery is keyed by (seed, src, dst, tag, seq) alone, so a
# given (schedule, seed) must inject the *same* faults whether the ranks
# are threads or forked processes -- identical per-kind counts, identical
# duplicate-drop tallies, identical typed errors at identical op counts.

def _fault_counters(world):
    """Integer-valued fault metric series from the world's registry
    (seconds are float sums whose order differs across transports)."""
    snap = world.metrics.snapshot()
    return {name: snap[name][4] for name in
            ("fault_events_total", "fault_bytes_total",
             "fault_duplicates_dropped_total") if name in snap}


def test_maskable_fault_parity_across_transports(ps, cfg):
    from repro.faults import FaultyProcessWorld
    acc_clean, _ = parallel_forces(ps, cfg, 4)

    wt = FaultyWorld(4, MASKABLE, seed=123, timeout=60.0)
    acc_t, _ = parallel_forces(ps, cfg, 4, world=wt)
    wp = FaultyProcessWorld(4, MASKABLE, seed=123, timeout=60.0)
    acc_p, _ = parallel_forces(ps, cfg, 4, world=wp)

    # Both transports mask the schedule to machine precision.  (Bitwise
    # equality is asserted on the deterministic traced path in
    # tests/harness/test_differential.py; untraced runs walk LETs in
    # arrival order, and the reorder holdback lives on the sender side
    # on threads but the receiver side on process, so the float
    # accumulation order may differ in the last bits.)
    assert max_rel_difference(acc_t, acc_p) < 1e-12
    assert max_rel_difference(acc_p, acc_clean) < 1e-12
    for kind in ("delay", "reorder", "duplicate"):
        assert wp.stats.count(kind) == wt.stats.count(kind) > 0, kind
    # every injected duplicate is eventually dropped, on both transports
    assert wp.stats.duplicates_dropped == wt.stats.duplicates_dropped \
        == wt.stats.count("duplicate")
    assert _fault_counters(wp) == _fault_counters(wt)
    assert wp.traffic.total_bytes == wt.traffic.total_bytes
    assert dict(wp.traffic.p2p_bytes) == dict(wt.traffic.p2p_bytes)


def test_slowdown_parity_on_process_transport(ps, cfg):
    from repro.faults import FaultyProcessWorld
    acc_clean, _ = parallel_forces(ps, cfg, 4)
    w = FaultyProcessWorld(4, "slowdown(rank=1, sleep=0.2ms)", timeout=60.0)
    acc_slow, _ = parallel_forces(ps, cfg, 4, world=w)
    assert max_rel_difference(acc_slow, acc_clean) < 1e-12
    assert w.stats.count("slowdown") > 0


def test_crash_parity_across_transports(ps, cfg):
    """Same typed error, same victim, same deterministic crash op-count,
    surfaced within the recv deadline on both transports."""
    from repro.faults import FaultyProcessWorld
    outcomes = {}
    for name, world in (
            ("threads", FaultyWorld(4, "crash(rank=1, after=12)",
                                    seed=7, timeout=8.0)),
            ("process", FaultyProcessWorld(4, "crash(rank=1, after=12)",
                                           seed=7, timeout=8.0))):
        t0 = time.monotonic()
        with pytest.raises(RankFailedError) as ei:
            parallel_forces(ps, cfg, 4, world=world, timeout=60.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 30.0, f"{name}: crash took {elapsed:.1f}s"
        assert ei.value.failed_rank == 1
        outcomes[name] = (sorted(world.stats.crashed_ranks),
                          world.stats.count("crash"),
                          world._op_count[1])
    assert outcomes["threads"] == outcomes["process"] == ([1], 1, 12)


@pytest.mark.parametrize("transport", ("threads", "process"))
def test_mid_step_crash_unblocks_let_receivers(ps, cfg, transport):
    """Regression for the LET recv audit (gravity_parallel): a rank that
    dies *between* the boundary-exchange barrier and its LET send -- op
    30 lands mid-way through the second step's force phase -- must
    surface as ``RankFailedError`` on the peers blocked in
    ``comm.recv(tag=TAG_LET)``, never as a hang, on both transports."""
    from repro.faults import FaultyProcessWorld
    if transport == "threads":
        world = FaultyWorld(4, "crash(rank=2, after=30)", timeout=8.0)
    else:
        world = FaultyProcessWorld(4, "crash(rank=2, after=30)", timeout=8.0)
    t0 = time.monotonic()
    with pytest.raises(RankFailedError) as ei:
        run_parallel_simulation(4, ps.copy(), cfg, n_steps=2,
                                world=world, timeout=60.0)
    elapsed = time.monotonic() - t0
    assert ei.value.failed_rank == 2
    assert elapsed < 30.0, f"mid-step crash took {elapsed:.1f}s to surface"
    assert world.stats.crashed_ranks == [2]


def test_crash_during_message_loop_unblocks_receivers():
    """Receivers waiting on a crashed sender get the typed error, not a
    full-deadline hang."""
    def prog(comm):
        if comm.rank == 0:
            t0 = time.monotonic()
            try:
                for i in range(10):
                    comm.recv(1, tag=0)
            except RankFailedError:
                return time.monotonic() - t0
            return None
        for i in range(10):
            comm.send(np.arange(4), 0, tag=0)
        return "sender done"

    world = FaultyWorld(2, "crash(rank=1, after=4)", timeout=6.0)
    with pytest.raises(RankFailedError):
        spmd_run(2, prog, world=world, timeout=30.0)
