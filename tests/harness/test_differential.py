"""Differential verification: serial vs. parallel forces, parametrized.

Runs the same seeded ICs (Plummer and Milky Way) through the serial
``Simulation`` and the distributed ``ParallelSimulation`` at 1/2/4/8
ranks and theta in {0.25, 0.5, 0.75}, asserting force agreement inside
calibrated theta-scaled envelopes and direct-summation accuracy for the
parallel result.  The heaviest combinations carry the ``harness_slow``
marker; ``make test-faults`` (or ``FULL=1 ./run_faults.sh``) runs the
complete matrix.
"""

import functools

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import milky_way_model, plummer_model
from repro.simmpi.transport import make_world
from repro.testing import differential_force_report, parallel_forces

RANKS = (1, 2, 4, 8)
THETAS = (0.25, 0.5, 0.75)
#: Cross-transport equivalence matrix (the mpi4py shim needs mpiexec and
#: is exercised by its own opt-in test, not here).
TRANSPORT_RANKS = (1, 2, 4)


@functools.lru_cache(maxsize=None)
def _ic(name):
    if name == "plummer":
        return plummer_model(1536, seed=11)
    return milky_way_model(4096, seed=12)


def _cfg(theta):
    return SimulationConfig(theta=theta, softening=0.02, dt=0.01)


def _cases():
    for ic in ("plummer", "milky_way"):
        for theta in THETAS:
            for ranks in RANKS:
                # The theta=0.25 Milky Way rows are the expensive tail
                # (deep walks on a clustered disk at several rank
                # counts); keep one representative in the fast subset.
                slow = ic == "milky_way" and theta == 0.25 and ranks > 1
                marks = [pytest.mark.harness_slow] if slow else []
                yield pytest.param(ic, theta, ranks,
                                   id=f"{ic}-theta{theta}-r{ranks}",
                                   marks=marks)


@pytest.mark.parametrize("ic,theta,ranks", list(_cases()))
def test_parallel_forces_match_serial(ic, theta, ranks):
    report = differential_force_report(_ic(ic), _cfg(theta), ranks)
    report.assert_agrees()
    # The parametrized envelope is theta-scaled; pin the absolute floor
    # too so a silent pipeline regression cannot hide behind theta.
    assert report.max_rel < 0.1
    assert report.median_rel < report.median_tolerance


def test_serial_decomposition_ablation_matches_too():
    """The ablation decomposition path feeds the same walk; its forces
    must satisfy the same envelopes."""
    ps = _ic("plummer")
    cfg = _cfg(0.5)
    acc_h, _ = parallel_forces(ps, cfg, 4, decomposition_method="hierarchical")
    acc_s, _ = parallel_forces(ps, cfg, 4, decomposition_method="serial")
    ref, _ = parallel_forces(ps, cfg, 1)
    for acc in (acc_h, acc_s):
        rel = (np.linalg.norm(acc - ref, axis=1)
               / (np.linalg.norm(ref, axis=1) + 1e-300))
        assert np.median(rel) < 5e-3
        assert rel.max() < 0.1


def test_differential_with_invariant_checks_enabled():
    """The mid-run invariant checkers must be silent on a healthy run
    (and not perturb the forces)."""
    ps = _ic("plummer")
    cfg = _cfg(0.5)
    acc_plain, _ = parallel_forces(ps, cfg, 4)
    acc_checked, _ = parallel_forces(ps, cfg, 4, invariant_checks=True)
    assert np.array_equal(acc_plain, acc_checked) or \
        np.max(np.abs(acc_plain - acc_checked)) < 1e-13


# --- cross-transport differential matrix --------------------------------
#
# The process transport must be *observationally indistinguishable* from
# the threaded reference: bitwise-equal float64 forces, identical
# interaction counts, identical logical traffic bytes.  Anything less
# means the transport swap changed the computation, not just where it
# ran.

def _transport_probe(ranks: int, transport: str, n_steps: int = 2):
    """One short run; returns (per-rank state, counts, traffic totals).

    Runs under a :class:`VirtualClock` tracer, which selects the
    deterministic LET arrival path (rank-order blocking recvs) -- the
    mode in which bitwise force equality across transports is a hard
    guarantee rather than a timing accident.
    """
    from repro.obs import Tracer, VirtualClock
    world = make_world(ranks, transport=transport, timeout=120.0)
    sims = run_parallel_simulation(ranks, _ic("plummer"), _cfg(0.5),
                                   n_steps=n_steps, world=world,
                                   trace=Tracer(clock=VirtualClock()))
    state = [(np.asarray(s.particles.ids), s.particles.pos, s.acc, s.phi)
             for s in sims]
    counts = [[(b.counts.n_pp, b.counts.n_pc) for b in s.history]
              for s in sims]
    return state, counts, world.traffic.total_bytes, world.traffic.summary()


@pytest.mark.parametrize("ranks", TRANSPORT_RANKS)
def test_process_transport_bitwise_equal_to_threads(ranks):
    st_t, counts_t, bytes_t, summary_t = _transport_probe(ranks, "threads")
    st_p, counts_p, bytes_p, summary_p = _transport_probe(ranks, "process")
    for (ids_t, pos_t, acc_t, phi_t), (ids_p, pos_p, acc_p, phi_p) in \
            zip(st_t, st_p):
        assert np.array_equal(ids_t, ids_p)
        assert np.array_equal(pos_t, pos_p)
        assert np.array_equal(acc_t, acc_p)   # bitwise float64
        assert np.array_equal(phi_t, phi_p)
    assert counts_t == counts_p              # identical interaction counts
    assert bytes_t == bytes_p                # identical logical traffic
    assert summary_t == summary_p            # ... in every phase


@pytest.mark.parametrize("ranks", TRANSPORT_RANKS[1:])
def test_process_transport_force_primer_matches(ranks):
    """The `parallel_forces` harness itself runs on both substrates.

    Untraced runs consume LETs in arrival order, so this asserts the
    maskable-fault-grade envelope rather than bitwise equality (which
    the traced probe above guarantees).
    """
    from repro.testing import max_rel_difference
    ps = _ic("plummer")
    cfg = _cfg(0.5)
    acc_t, phi_t = parallel_forces(ps, cfg, ranks)
    acc_p, phi_p = parallel_forces(ps, cfg, ranks, transport="process")
    assert max_rel_difference(acc_p, acc_t) < 1e-12
    assert np.max(np.abs(phi_p - phi_t) / (np.abs(phi_t) + 1e-300)) < 1e-12


def test_differential_report_on_process_transport():
    """Serial-vs-parallel accuracy envelopes hold over the process
    transport too (same walk, different substrate)."""
    report = differential_force_report(_ic("plummer"), _cfg(0.5), 2,
                                       transport="process")
    report.assert_agrees()
    assert report.max_rel < 0.1


def test_report_tolerances_scale_with_theta():
    ps = plummer_model(512, seed=3)
    r1 = differential_force_report(ps, _cfg(0.25), 2)
    r2 = differential_force_report(ps, _cfg(0.75), 2)
    assert r1.median_tolerance < r2.median_tolerance
    assert r1.max_tolerance < r2.max_tolerance
