"""Convergence harness for the measured-cost load-balance feedback loop.

The paper (Sec. III-B1) rebalances domains from the measured execution
time of the previous step's gravity kernels.  These tests close that
loop end to end on a deliberately *skewed* initial condition -- a
Plummer sphere plus a much denser satellite clump, so per-particle tree
walk cost varies strongly across space -- and check that

1. ``load_balance="measured"`` ends with a strictly lower
   slowest-rank/mean gravity-cost ratio than the count-balanced
   baseline (the PR's acceptance criterion),
2. the smoothed imbalance trajectory recorded in the ``domain_update``
   spans converges below an envelope and stays there,
3. a fault-injected slow rank (repro.faults ``slowdown``) is
   compensated with a smaller domain when costs come from measured
   seconds,
4. the ``lb_*`` metrics and ``rebalance`` spans are emitted.

Runs use the deterministic ``counts`` cost source (tree-walk flops)
except for the slowdown test, which is exactly the case where wall
seconds carry information flops cannot.
"""

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.faults import FaultyWorld
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock
from repro.particles import ParticleSet

N = 1600
P = 4
STEPS = 8
#: Smoothed imbalance must settle below this once the model is warm.
ENVELOPE = 1.15
#: ...within this many warm checks.
K_SETTLE = 3


def clustered(n=N, seed=11, scale=0.05, frac=0.25):
    """Plummer sphere + dense satellite clump: strong cost-per-particle
    skew (clump particles see far more interactions), which count
    balancing cannot see."""
    nb = int(n * frac)
    a = plummer_model(n - nb, seed=seed)
    b = plummer_model(nb, seed=seed + 1)
    b.pos *= scale
    b.vel *= np.sqrt(1.0 / scale)   # keep the shrunk clump near-virial
    b.pos += np.array([3.0, 0.0, 0.0])
    p = ParticleSet.concatenate([a, b])
    p.ids = np.arange(p.n)
    return p


def final_cost_ratio(sims):
    """Slowest-rank/mean gravity cost (tree-walk flops) of the last step."""
    fl = np.array([s.history[-1].counts.flops for s in sims], dtype=float)
    return float(fl.max() / fl.mean())


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(dt=1.0 / 64)


@pytest.fixture(scope="module")
def measured_run(cfg):
    tracer = Tracer(clock=VirtualClock())
    sims = run_parallel_simulation(P, clustered(), cfg, n_steps=STEPS,
                                   load_balance="measured",
                                   lb_source="counts", trace=tracer)
    return sims, tracer


@pytest.fixture(scope="module")
def count_run(cfg):
    return run_parallel_simulation(P, clustered(), cfg, n_steps=STEPS,
                                   load_balance="count")


def test_measured_beats_count(measured_run, count_run):
    """Acceptance criterion: measured-cost cuts end strictly better
    balanced (in gravity cost) than count-balanced cuts."""
    measured, _ = measured_run
    r_measured = final_cost_ratio(measured)
    r_count = final_cost_ratio(count_run)
    assert r_measured < r_count
    assert r_measured < 1.2     # and well balanced in absolute terms


def test_imbalance_converges_below_envelope(measured_run):
    """The smoothed imbalance recorded per domain_update span settles
    below the envelope within K_SETTLE warm checks and stays there."""
    _, tracer = measured_run
    ratios = [e.args["lb_imbalance"] for e in tracer.events()
              if e.name == "domain_update" and e.rank == 0
              and "lb_imbalance" in e.args]
    # One cold check (no ratio) plus one warm check per redistribute.
    assert len(ratios) >= STEPS
    assert all(r <= ENVELOPE for r in ratios[K_SETTLE:])
    assert ratios[-1] <= 1.12


def test_lb_metrics_and_spans_emitted(measured_run):
    measured, tracer = measured_run
    reg = measured[0].comm.world.metrics
    assert reg.counter("lb_rebalance_total", "").value() >= 1
    assert reg.gauge("lb_imbalance_ratio", "").value() > 0
    for rank in range(P):
        assert reg.gauge("lb_rank_cost", "",
                         labelnames=("rank",)).value(rank=rank) > 0
    names = {e.name for e in tracer.events()}
    assert "rebalance" in names
    # Every redistribute appended one boundary tuple (prime + per step),
    # identically on every rank (the decision is collective).
    for s in measured:
        assert len(s.boundary_history) == STEPS + 1
        assert s.boundary_history == measured[0].boundary_history


def test_slow_rank_gets_smaller_domain(cfg):
    """A transport-level slowdown fault on rank 2 shows up in measured
    seconds (comm stalls inside the force phases) and the feedback loop
    compensates by shrinking that rank's domain."""
    world = FaultyWorld(P, "slowdown(rank=2, sleep=40ms)", seed=1,
                        timeout=300.0)
    sims = run_parallel_simulation(P, clustered(), cfg, n_steps=6,
                                   world=world, load_balance="measured",
                                   lb_source="seconds", lb_alpha=0.7)
    counts = [s.particles.n for s in sims]
    assert counts[2] == min(counts)
    assert counts[2] < 0.9 * (N / P)


@pytest.mark.harness_slow
def test_measured_beats_count_8_ranks(cfg):
    """Same acceptance comparison at twice the rank count."""
    measured = run_parallel_simulation(8, clustered(), cfg, n_steps=STEPS,
                                       load_balance="measured",
                                       lb_source="counts")
    count = run_parallel_simulation(8, clustered(), cfg, n_steps=STEPS,
                                    load_balance="count")
    assert final_cost_ratio(measured) < final_cost_ratio(count)
