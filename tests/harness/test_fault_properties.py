"""Property-based tests (hypothesis) for FaultyWorld transparency.

The contract: under *any* delay/reorder/duplicate schedule with no
crashes, a program's observable behaviour -- every payload received, in
order, plus the logical traffic tallies -- is identical to the
fault-free run.  Hypothesis searches the (probabilities, seed, message
pattern) space for a counterexample.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import SimulationConfig
from repro.faults import FaultSchedule, FaultSpec, FaultyWorld
from repro.ics import plummer_model
from repro.simmpi import SimWorld, spmd_run
from repro.testing import max_rel_difference, parallel_forces

SIZE = 3


def _workload(comm, n_msgs: int, n_tags: int):
    """A deterministic SPMD program mixing p2p traffic and collectives.

    Every rank streams ``n_msgs`` tagged arrays to every peer, receives
    them back in order, and folds everything through an allreduce.
    Returns (received payload checksum, per-message trace) so runs can
    be compared exactly.
    """
    trace = []
    for i in range(n_msgs):
        for dst in range(comm.size):
            if dst != comm.rank:
                comm.send(np.array([comm.rank, dst, i], dtype=np.float64),
                          dst, tag=i % n_tags)
    for src in range(comm.size):
        if src == comm.rank:
            continue
        for i in range(n_msgs):
            m = comm.recv(src, tag=i % n_tags)
            # In-order exactly-once delivery: the i-th message from src
            # must be src's i-th send to us.
            assert m[0] == src and m[1] == comm.rank and m[2] == i, \
                f"out-of-order delivery: got {m} expected ({src}, ..., {i})"
            trace.append(m.copy())
    total = comm.allreduce(float(sum(m.sum() for m in trace)))
    roundtrip = comm.alltoall([f"{comm.rank}->{d}" for d in range(comm.size)])
    return total, [tuple(m) for m in trace], roundtrip


def _run(world, n_msgs, n_tags):
    return spmd_run(SIZE, _workload, n_msgs, n_tags,
                    world=world, timeout=60.0)


@given(
    p_delay=st.floats(0.0, 1.0),
    p_reorder=st.floats(0.0, 1.0),
    p_duplicate=st.floats(0.0, 1.0),
    max_delay_ms=st.floats(0.0, 1.0),
    n_msgs=st.integers(1, 6),
    n_tags=st.integers(1, 3),
    seed=st.integers(0, 2**20),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_any_maskable_schedule_is_transparent(p_delay, p_reorder, p_duplicate,
                                              max_delay_ms, n_msgs, n_tags,
                                              seed):
    clean_world = SimWorld(SIZE, timeout=60.0)
    clean = _run(clean_world, n_msgs, n_tags)

    schedule = FaultSchedule.of(
        FaultSpec("delay", prob=p_delay, max_delay=max_delay_ms * 1e-3),
        FaultSpec("reorder", prob=p_reorder),
        FaultSpec("duplicate", prob=p_duplicate),
    )
    faulty_world = FaultyWorld(SIZE, schedule, seed=seed, timeout=60.0)
    faulty = _run(faulty_world, n_msgs, n_tags)

    assert faulty == clean
    assert faulty_world.traffic.total_bytes == clean_world.traffic.total_bytes
    assert dict(faulty_world.traffic.p2p_bytes) == \
        dict(clean_world.traffic.p2p_bytes)
    assert faulty_world.traffic.summary() == clean_world.traffic.summary()


@given(seed=st.integers(0, 2**20))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_distributed_forces_invariant_under_certain_faults(seed):
    """prob=1.0 everywhere: every message delayed, reordered where
    possible and duplicated -- the full pipeline still reproduces the
    fault-free forces."""
    ps = plummer_model(768, seed=5)
    cfg = SimulationConfig(theta=0.6, softening=0.02)
    acc_clean, _ = parallel_forces(ps, cfg, SIZE)
    world = FaultyWorld(
        SIZE, "delay(prob=1, max=0.3ms); reorder(prob=1); duplicate(prob=1)",
        seed=seed, timeout=60.0)
    acc_faulty, _ = parallel_forces(ps, cfg, SIZE, world=world)
    assert max_rel_difference(acc_faulty, acc_clean) < 1e-12
    assert world.stats.count("duplicate") > 0
    assert world.stats.count("reorder") > 0
