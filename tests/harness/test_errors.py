"""Typed-error semantics of the hardened SimMPI runtime.

A dead peer must surface as :class:`RankFailedError` within one poll
interval; a live-but-silent peer as :class:`RecvTimeoutError` after the
deadline -- never as a bare 120 s hang.
"""

import time

import numpy as np
import pytest

from repro.simmpi import (
    RankFailedError,
    RecvTimeoutError,
    SimWorld,
    spmd_run,
)


def test_pop_timeout_is_typed_and_backward_compatible():
    world = SimWorld(2, timeout=0.25)
    t0 = time.monotonic()
    with pytest.raises(RecvTimeoutError, match="rank 0 waiting for rank 1"):
        world.pop(1, 0, tag=0)
    assert time.monotonic() - t0 < 5.0
    # RecvTimeoutError still satisfies pre-existing TimeoutError handlers.
    assert issubclass(RecvTimeoutError, TimeoutError)


def test_pop_on_failed_rank_raises_rank_failed_not_timeout():
    world = SimWorld(2, timeout=30.0)
    world.mark_rank_failed(1, ValueError("boom"))
    t0 = time.monotonic()
    with pytest.raises(RankFailedError) as ei:
        world.pop(1, 0, tag=0)
    assert time.monotonic() - t0 < 5.0  # fail-fast, not the 30 s deadline
    assert ei.value.failed_rank == 1
    assert ei.value.waiting_rank == 0


def test_messages_sent_before_death_still_delivered():
    world = SimWorld(2, timeout=5.0)
    world.push(1, 0, 0, "last words", nbytes=10)
    world.mark_rank_failed(1)
    assert world.pop(1, 0, 0) == "last words"
    with pytest.raises(RankFailedError):
        world.pop(1, 0, 0)


def test_barrier_aborted_by_failure_is_typed():
    world = SimWorld(2, timeout=5.0)
    world.mark_rank_failed(1)
    with pytest.raises(RankFailedError):
        world.barrier()


def test_per_call_recv_timeout_override():
    def prog(comm):
        if comm.rank == 0:
            try:
                comm.recv(1, tag=0, timeout=0.2)
            except RecvTimeoutError:
                return "timed out"
            return "received?!"
        time.sleep(0.6)
        return "slow sender never sent"

    assert spmd_run(2, prog, timeout=30.0)[0] == "timed out"


def test_peer_exception_unblocks_receiver_promptly():
    """A raising rank is marked failed; the receiver blocked on it sees
    RankFailedError long before the world timeout."""
    seen = {}

    def prog(comm):
        if comm.rank == 0:
            t0 = time.monotonic()
            try:
                comm.recv(1, tag=7)
            except RankFailedError as e:
                seen["elapsed"] = time.monotonic() - t0
                seen["failed_rank"] = e.failed_rank
            return "survivor"
        raise ValueError("boom on rank 1")

    with pytest.raises(RuntimeError, match="rank 1"):
        spmd_run(2, prog, world=SimWorld(2, timeout=60.0), timeout=60.0)
    assert seen["failed_rank"] == 1
    assert seen["elapsed"] < 10.0


def test_collective_with_dead_rank_is_typed():
    def prog(comm):
        if comm.rank == 1:
            raise ValueError("dies before the collective")
        try:
            comm.allgather(np.arange(3))
        except RankFailedError:
            return "typed"
        return "untyped"

    with pytest.raises(RuntimeError, match="rank 1"):
        spmd_run(3, prog, world=SimWorld(3, timeout=60.0), timeout=60.0)


def test_generic_error_reporting_unchanged():
    """The pre-existing contract (RuntimeError naming the rank) holds for
    ordinary program bugs."""
    def prog(comm):
        if comm.rank == 1:
            raise KeyError("oops")
        comm.barrier()

    with pytest.raises(RuntimeError, match="rank 1"):
        spmd_run(3, prog)
