"""Fault schedules vs the step-coherence paths.

The incremental LET drain consumes remote trees in rank order while
sends are still in flight, and the tree/walk caches carry state across
steps -- both are new surface area for transport misbehaviour.  These
tests pin that the coherence knobs change *nothing* about fault
semantics: maskable schedules stay transparent, reordered LET arrivals
cannot change forces (the drain's blocking per-rank receives ignore
arrival order), crashes mid-drain still surface as typed errors fast,
and a forced rebalance between steps cannot leave a stale cache entry
alive.
"""

import time

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import (
    gather_particles,
    run_parallel_simulation,
)
from repro.faults import FaultyWorld
from repro.ics import plummer_model
from repro.simmpi import RankFailedError
from repro.testing import max_rel_difference, parallel_forces

#: Every maskable fault kind at once (mirrors tests/harness/test_faults).
MASKABLE = "delay(prob=0.3, max=1ms); reorder(prob=0.5); duplicate(prob=0.25)"

#: Every step-coherence knob on.
COHERENT = dict(tree_reuse="repair", walk_warm_start=True,
                let_drain="incremental")


@pytest.fixture(scope="module")
def ps():
    return plummer_model(1536, seed=11)


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(theta=0.5, softening=0.02, dt=0.01, **COHERENT)


# -- maskable schedules stay transparent ----------------------------------

def test_maskable_faults_transparent_with_incremental_drain(ps, cfg):
    """Delay+reorder+duplicate against the incremental drain: forces
    match the fault-free coherent run to machine precision and every
    fault kind actually fired against it."""
    acc_clean, phi_clean = parallel_forces(ps, cfg, 4)
    world = FaultyWorld(4, MASKABLE, seed=123, timeout=60.0)
    acc_faulty, phi_faulty = parallel_forces(ps, cfg, 4, world=world)
    assert max_rel_difference(acc_faulty, acc_clean) < 1e-12
    assert np.max(np.abs(phi_faulty - phi_clean)
                  / (np.abs(phi_clean) + 1e-300)) < 1e-12
    for kind in ("delay", "reorder", "duplicate"):
        assert world.stats.count(kind) > 0, f"{kind} never fired"


def test_reordered_let_arrivals_do_not_change_forces(ps, cfg):
    """An aggressive reorder-only schedule: the incremental drain takes
    LETs in rank order via blocking per-source receives, so arbitrary
    arrival permutations must be invisible -- and invisible *bitwise*,
    because the accumulation sequence is fixed."""
    acc_clean, phi_clean = parallel_forces(ps, cfg, 4)
    world = FaultyWorld(4, "reorder(prob=0.9)", seed=7, timeout=60.0)
    acc_r, phi_r = parallel_forces(ps, cfg, 4, world=world)
    assert world.stats.count("reorder") > 0
    assert acc_r.tobytes() == acc_clean.tobytes()
    assert phi_r.tobytes() == phi_clean.tobytes()


def test_coherent_matches_baseline_under_same_faults(ps):
    """Under one seeded maskable schedule, knobs-on equals knobs-off:
    the caches and the overlapped drain add no fault sensitivity."""
    base = SimulationConfig(theta=0.5, softening=0.02, dt=0.01)
    w1 = FaultyWorld(4, MASKABLE, seed=42, timeout=60.0)
    acc_off, _ = parallel_forces(ps, base, 4, world=w1)
    w2 = FaultyWorld(4, MASKABLE, seed=42, timeout=60.0)
    acc_on, _ = parallel_forces(ps, SimulationConfig(
        theta=0.5, softening=0.02, dt=0.01, **COHERENT), 4, world=w2)
    assert max_rel_difference(acc_on, acc_off) < 1e-12


# -- crashes surface fast, never hang -------------------------------------

@pytest.mark.parametrize("victim", [1, 2])
def test_mid_step_crash_raises_typed_error(ps, cfg, victim):
    """A rank dying while its peers sit in the incremental drain's
    blocking receives must surface as RankFailedError well inside the
    timeout -- the overlap can't turn a crash into a hang."""
    world = FaultyWorld(4, f"crash(rank={victim}, after=10)", timeout=8.0)
    t0 = time.monotonic()
    with pytest.raises(RankFailedError) as ei:
        parallel_forces(ps, cfg, 4, world=world, timeout=60.0)
    elapsed = time.monotonic() - t0
    assert ei.value.failed_rank == victim
    assert elapsed < 30.0, f"crash took {elapsed:.1f}s to surface"


def test_crash_during_multi_step_reuse_run(ps, cfg):
    """Crash late enough that step 1 completed and the caches are warm:
    the failure still propagates out of the evolve loop."""
    world = FaultyWorld(4, "crash(rank=3, after=35)", timeout=8.0)
    t0 = time.monotonic()
    with pytest.raises(RankFailedError):
        run_parallel_simulation(4, ps.copy(), cfg, n_steps=3, world=world,
                                timeout=60.0)
    assert time.monotonic() - t0 < 30.0


# -- stale caches across rebalances ---------------------------------------

def test_rebalance_between_steps_matches_cold_run(ps):
    """Force a domain re-cut (and hence particle exchange) on every
    step: epoch tags must invalidate the sort/walk caches so the
    coherent evolution equals the knob-off evolution bitwise."""
    base = dict(theta=0.5, softening=0.02, dt=0.01)

    def evolve(config):
        sims = run_parallel_simulation(
            4, ps.copy(), config, n_steps=3,
            load_balance="measured", lb_source="counts",
            lb_trigger_ratio=1.0)
        full = gather_particles(sims)
        order = np.argsort(full.ids, kind="stable")
        return full.pos[order], full.vel[order]

    # Untraced baseline: pin the rank-order drain (let_drain="auto"
    # would pick the opportunistic drain, whose accumulation order
    # races on LET arrival and is not a bitwise reference).
    pos_off, vel_off = evolve(SimulationConfig(**base,
                                               let_drain="deterministic"))
    pos_on, vel_on = evolve(SimulationConfig(**base, **COHERENT))
    assert pos_on.tobytes() == pos_off.tobytes()
    assert vel_on.tobytes() == vel_off.tobytes()


@pytest.mark.harness_slow
def test_eight_rank_coherent_evolution_under_faults(ps, cfg):
    """8 ranks, three full steps, maskable schedule, all knobs on:
    final positions match the fault-free coherent evolution."""
    sims = run_parallel_simulation(8, ps.copy(), cfg, n_steps=3)
    clean = gather_particles(sims)
    world = FaultyWorld(8, MASKABLE, seed=321, timeout=120.0)
    sims_f = run_parallel_simulation(8, ps.copy(), cfg, n_steps=3,
                                     world=world, invariant_checks=True)
    faulty = gather_particles(sims_f)
    scale = np.linalg.norm(clean.pos, axis=1).mean()
    assert np.max(np.linalg.norm(faulty.pos - clean.pos, axis=1)) \
        < 1e-12 * scale
