"""Property-based tests (hypothesis) for the capped weighted cut.

:func:`~repro.parallel.loadbalance.cut_weighted_with_cap` sits at the
bottom of the measured-cost feedback loop, so it has to hold up under
*any* cost vector the cost model can produce -- including the skewed,
duplicated and degenerate ones.  Hypothesis searches for inputs that

- break boundary monotonicity,
- bust the paper's 30% particle-count cap,
- make the cost spread worse than a plain uniform (count) cut would
  have been, beyond the one-sample granularity the greedy sweep allows,
- or crash on degenerate input (all-equal keys, zero cost, fewer
  samples than domains).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import cut_weighted_with_cap
from repro.parallel.loadbalance import domain_counts

KEY_MAX = np.uint64(0xFFFFFFFFFFFFFFFF)


def _sorted_keys(values, distinct=False):
    a = np.array(values, dtype=np.uint64)
    if distinct:
        a = np.unique(a)
    return np.sort(a)


def _per_domain_cost(keys, cost, boundaries):
    dom = np.searchsorted(boundaries[1:-1], keys, side="right")
    return np.bincount(dom, weights=cost, minlength=len(boundaries) - 1)


keys_strategy = st.lists(st.integers(0, int(KEY_MAX)), min_size=0,
                         max_size=200)
cost_strategy = st.lists(st.floats(0.0, 1.0e6, allow_nan=False,
                                   allow_infinity=False),
                         min_size=0, max_size=200)
domains_strategy = st.integers(1, 16)


def _aligned(keys, cost):
    """Trim the independently drawn lists to a common length."""
    n = min(len(keys), len(cost))
    return keys[:n], cost[:n]


@settings(max_examples=50, deadline=None)
@given(keys=keys_strategy, cost=cost_strategy, p=domains_strategy,
       cap=st.one_of(st.just(float("inf")), st.floats(1.0, 3.0)))
def test_boundaries_always_monotone_and_framed(keys, cost, p, cap):
    """Any input: p+1 boundaries, 0 first, KEY_MAX last, non-decreasing."""
    keys, cost = _aligned(keys, cost)
    b = cut_weighted_with_cap(_sorted_keys(keys), np.array(cost), p,
                              cap_ratio=cap)
    assert len(b) == p + 1
    assert b.dtype == np.uint64
    assert b[0] == 0 and b[-1] == KEY_MAX
    assert all(int(b[i]) <= int(b[i + 1]) for i in range(p))


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, int(KEY_MAX)), min_size=1, max_size=200,
                     unique=True),
       cost=cost_strategy, p=domains_strategy,
       cap=st.floats(1.0, 3.0))
def test_cap_respected_on_distinct_keys(keys, cost, p, cap):
    """Distinct keys, n >= p: no domain exceeds ceil(cap * n/p) samples.

    (+1 covers the feasibility clamp: when the tail would otherwise run
    out of samples, one domain may take a single extra.)
    """
    k = _sorted_keys(keys, distinct=True)
    n = len(k)
    if n < p:
        return
    c = np.resize(np.array(cost if cost else [1.0]), n)
    b = cut_weighted_with_cap(k, c, p, cap_ratio=cap)
    counts = domain_counts(k, b)
    assert counts.sum() == n
    assert counts.max() <= int(np.ceil(cap * n / p)) + 1


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, int(KEY_MAX)), min_size=1, max_size=200,
                     unique=True),
       cost=st.lists(st.floats(1.0e-3, 1.0e6, allow_nan=False,
                               allow_infinity=False),
                     min_size=1, max_size=200),
       p=domains_strategy)
def test_cost_spread_no_worse_than_uniform(keys, cost, p):
    """Uncapped weighted cuts beat uniform cuts up to sample granularity.

    The greedy sweep guarantees max domain cost <= total/p + c_max (it
    never overshoots the running even-split target by more than the one
    sample that crossed it), and the uniform cut's max is >= total/p,
    so: weighted_max <= uniform_max + c_max.  A tighter bound does not
    hold -- one expensive sample can force both cuts to carry it.
    """
    k = _sorted_keys(keys, distinct=True)
    n = len(k)
    if n < p:
        return
    c = np.resize(np.array(cost), n)
    weighted = cut_weighted_with_cap(k, c, p, cap_ratio=np.inf)
    uniform = cut_weighted_with_cap(k, np.ones(n), p, cap_ratio=np.inf)
    w_max = _per_domain_cost(k, c, weighted).max()
    u_max = _per_domain_cost(k, c, uniform).max()
    assert w_max <= u_max + c.max() * (1.0 + 1e-9) + 1e-9


@settings(max_examples=50, deadline=None)
@given(key=st.integers(0, int(KEY_MAX)), n=st.integers(0, 50),
       p=domains_strategy)
def test_all_equal_keys_never_crash(key, n, p):
    """All-duplicate keys (every particle in one cell) must not crash."""
    k = np.full(n, key, dtype=np.uint64)
    b = cut_weighted_with_cap(k, np.ones(n), p)
    assert len(b) == p + 1
    assert all(int(b[i]) <= int(b[i + 1]) for i in range(p))
    assert domain_counts(k, b).sum() == n


@settings(max_examples=50, deadline=None)
@given(keys=keys_strategy, p=domains_strategy)
def test_zero_cost_never_crashes(keys, p):
    """Zero total cost falls back to count balancing, never divides by 0."""
    k = _sorted_keys(keys)
    b = cut_weighted_with_cap(k, np.zeros(len(k)), p)
    assert len(b) == p + 1
    assert domain_counts(k, b).sum() == len(k)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, int(KEY_MAX)), min_size=0, max_size=10),
       p=st.integers(11, 64))
def test_fewer_samples_than_domains_never_crashes(keys, p):
    """n < p: some domains end up empty, but the cut stays well-formed."""
    k = _sorted_keys(keys)
    b = cut_weighted_with_cap(k, np.ones(len(k)), p)
    assert len(b) == p + 1
    assert b[0] == 0 and b[-1] == KEY_MAX
    assert all(int(b[i]) <= int(b[i + 1]) for i in range(p))
    assert domain_counts(k, b).sum() == len(k)


@settings(max_examples=50, deadline=None)
@given(keys=st.lists(st.integers(0, int(KEY_MAX)), min_size=8, max_size=200,
                     unique=True),
       hot=st.integers(0, 199), p=st.integers(2, 8))
def test_extreme_skew_leaves_no_domain_empty(keys, hot, p):
    """One sample carrying ~all cost must not collapse a domain to zero
    samples (n >= p): the never-empty guard holds under any skew."""
    k = _sorted_keys(keys, distinct=True)
    n = len(k)
    if n < p:
        return
    c = np.ones(n)
    c[hot % n] = 1.0e9
    b = cut_weighted_with_cap(k, c, p, cap_ratio=1.3)
    assert domain_counts(k, b).min() >= 1
