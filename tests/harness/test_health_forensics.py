"""Health-forensics harness: the fault matrix localized post mortem.

The acceptance scenario for the run-health subsystem: drive crash,
slowdown and silent-stall schedules through real simulations on both
transports, let the flight recorder auto-dump its bundle, and assert
the ``python -m repro.obs.postmortem`` analyzer names the guilty rank
and its last-known phase for every one of them -- using the same
``--expect-*`` CLI contract the ``health-forensics`` CI job drives.
"""

import json

import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import FlightRecorder, HeartbeatBoard, Tracer, VirtualClock
from repro.obs.postmortem import analyze, load_bundle
from repro.obs.postmortem import main as postmortem_main
from repro.simmpi import make_world, spmd_run


@pytest.fixture(scope="module")
def ps():
    return plummer_model(400, seed=7)


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(theta=0.6)


# -- crash schedules -------------------------------------------------------

@pytest.mark.parametrize("transport", ["threads", "process"])
@pytest.mark.parametrize("crash_rank", [0, 1])
def test_crash_localized_to_guilty_rank(tmp_path, ps, cfg, transport,
                                        crash_rank):
    """Whichever rank the schedule kills, the analyzer names it."""
    world = make_world(2, transport=transport,
                      schedule=f"crash(rank={crash_rank}, after=12)",
                      timeout=30.0)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle", capacity=512)
    tracer = Tracer(clock=VirtualClock(), sink=recorder.ring)
    with pytest.raises(Exception):
        run_parallel_simulation(2, ps, cfg, n_steps=2, world=world,
                                trace=tracer, health=recorder,
                                timeout=30.0)
    assert recorder.bundle_path is not None
    # The CI assertion surface: exit 0 iff the verdict matches.
    assert postmortem_main([recorder.bundle_path,
                            "--expect-kind", "crash",
                            "--expect-rank", str(crash_rank)]) == 0
    assert postmortem_main([recorder.bundle_path,
                            "--expect-rank",
                            str(1 - crash_rank)]) == 1
    doc = analyze(load_bundle(recorder.bundle_path))
    assert doc["verdict"]["phase"], "guilty rank's last phase missing"


def test_crash_bundle_survives_at_four_ranks(tmp_path, ps, cfg):
    world = make_world(4, schedule="crash(rank=2, after=20)", timeout=30.0)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle")
    tracer = Tracer(clock=VirtualClock(), sink=recorder.ring)
    with pytest.raises(Exception):
        run_parallel_simulation(4, ps, cfg, n_steps=2, world=world,
                                trace=tracer, health=recorder,
                                timeout=30.0)
    assert postmortem_main([recorder.bundle_path,
                            "--expect-kind", "crash",
                            "--expect-rank", "2"]) == 0


# -- slowdown schedules: straggler ranking ---------------------------------

@pytest.mark.parametrize("transport", ["threads", "process"])
def test_slowdown_localized_as_straggler(tmp_path, ps, cfg, transport):
    """A slowed rank dominates the force-phase cost sums; the analyzer's
    straggler ranking names it.  Wall clocks throughout: the slowdown is
    a real sleep, and a deterministic-clock bundle would elide the
    wall-valued cost series the ranking needs."""
    world = make_world(2, transport=transport,
                      schedule="slowdown(rank=1, sleep=100ms)",
                      timeout=60.0)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle")
    run_parallel_simulation(2, ps, cfg, n_steps=1, world=world,
                            health=recorder, timeout=60.0)
    recorder.dump("manual")
    doc = analyze(load_bundle(recorder.bundle_path))
    assert doc["stragglers"][0]["rank"] == 1
    assert postmortem_main([recorder.bundle_path,
                            "--expect-kind", "straggler",
                            "--expect-rank", "1"]) == 0


# -- silent-stall schedules ------------------------------------------------

def _stall_prog(comm, board):
    """Rank 0 goes silent mid-protocol; everyone else blocks on it.

    The board template is attached *inside* the program, the way the
    simulation driver does it: on the process transport each forked
    worker rebuilds a rank-local board and ships it back through its
    report (attach is idempotent on threads, where ``comm.world`` is
    the parent world with the board already in place).
    """
    comm.world.attach_health(board)
    comm.world.set_phase(comm.rank, "stall_protocol")
    if comm.rank == 0:
        return "went silent"        # never sends what peers expect
    comm.send(comm.rank, 0, tag=1)  # rank 0 never drains these either
    return comm.recv(0, tag=2, timeout=2.0)


@pytest.mark.parametrize("transport", ["threads", "process"])
def test_silent_rank_localized_as_stall_root(tmp_path, transport):
    """Ranks blocked on a silent peer time out; the bundle's wait-for
    graph chains back to the silent rank and the verdict names it."""
    world = make_world(3, transport=transport, timeout=30.0)
    board = HeartbeatBoard(3)
    world.attach_health(board)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle")
    recorder.bind(world=world, board=board)
    with pytest.raises(Exception) as ei:
        spmd_run(3, _stall_prog, board, world=world, timeout=30.0)
    recorder.dump("timeout", error=ei.value)
    doc = analyze(load_bundle(recorder.bundle_path))
    graph = doc["wait_graph"]
    assert set(graph) == {"1", "2"} and set(graph.values()) == {0}
    assert doc["cycles"] == []
    assert postmortem_main([recorder.bundle_path,
                            "--expect-kind", "stall",
                            "--expect-rank", "0",
                            "--expect-phase", "stall_protocol"]) == 0


def test_deadlock_cycle_localized(tmp_path):
    """A true recv cycle is reported as a deadlock, not a stall."""

    def prog(comm, board):
        comm.world.attach_health(board)
        comm.world.set_phase(comm.rank, "deadlock_protocol")
        # Everyone receives from their left neighbour; nobody sends.
        left = (comm.rank - 1) % comm.size
        return comm.recv(left, tag=0, timeout=2.0)

    world = make_world(2, timeout=30.0)
    board = HeartbeatBoard(2)
    world.attach_health(board)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle")
    recorder.bind(world=world, board=board)
    with pytest.raises(Exception) as ei:
        spmd_run(2, prog, board, world=world, timeout=30.0)
    recorder.dump("timeout", error=ei.value)
    doc = analyze(load_bundle(recorder.bundle_path))
    assert doc["cycles"] == [[0, 1]]
    assert postmortem_main([recorder.bundle_path,
                            "--expect-kind", "deadlock"]) == 0


# -- injected faults visible in the bundle ---------------------------------

def test_nearby_faults_listed_in_analysis(tmp_path, ps, cfg):
    """Maskable faults that fired before the crash show up as fault
    instants in the trace tail alongside the crash verdict."""
    world = make_world(
        2, schedule="delay(prob=0.5, max=1ms); crash(rank=1, after=16)",
        seed=3, timeout=30.0)
    recorder = FlightRecorder(out_dir=tmp_path / "bundle", capacity=1024)
    tracer = Tracer(clock=VirtualClock(), sink=recorder.ring)
    with pytest.raises(Exception):
        run_parallel_simulation(2, ps, cfg, n_steps=2, world=world,
                                trace=tracer, health=recorder,
                                timeout=30.0)
    doc = analyze(load_bundle(recorder.bundle_path))
    kinds = {e["name"] for e in doc["fault_events"]}
    assert "fault_crash" in kinds
    assert doc["verdict"]["kind"] == "crash"
    hb = json.loads((tmp_path / "bundle" / "heartbeats.json").read_text())
    assert hb["ranks"]["1"]["last_fault"] == "crash"
    assert hb["ranks"]["1"]["faults"] >= 1
