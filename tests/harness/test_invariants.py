"""Regression tests pinning invariant-checker behaviour.

Every checker must (a) pass on healthy pipeline output and (b) fail
loudly -- with a specific InvariantViolation -- on a deliberately
corrupted input: a dropped particle, a truncated LET payload,
overlapping domain keys, a broken tree topology.
"""

import dataclasses

import numpy as np
import pytest

from repro.ics import plummer_model
from repro.octree import (
    build_octree,
    compute_moments,
    compute_opening_radii,
    make_groups,
)
from repro.parallel.decomposition import DomainDecomposition
from repro.parallel.lettree import boundary_structure, build_let_for_box
from repro.simmpi import spmd_run
from repro.testing import (
    InvariantViolation,
    check_conservation,
    check_decomposition,
    check_let,
    check_octree,
    check_ownership,
    conservation_totals,
)


@pytest.fixture(scope="module")
def ps():
    return plummer_model(900, seed=33)


@pytest.fixture()
def tree(ps):
    """A fresh (mutable) tree with moments per test."""
    t = build_octree(ps.pos, nleaf=16)
    compute_moments(t, ps.pos, ps.mass)
    compute_opening_radii(t, 0.5, "bh")
    make_groups(t, 64)
    return t


# -- conservation ---------------------------------------------------------

def test_conservation_passes_on_identical_sets(ps):
    before = conservation_totals(ps)
    after = conservation_totals(ps.copy())
    check_conservation(before, after)


def test_conservation_detects_dropped_particle(ps):
    before = conservation_totals(ps)
    truncated = ps.select(np.arange(ps.n - 1))  # one particle vanished
    with pytest.raises(InvariantViolation, match="particle count"):
        check_conservation(before, conservation_totals(truncated))


def test_conservation_detects_mass_tampering(ps):
    before = conservation_totals(ps)
    tampered = ps.copy()
    tampered.mass[0] *= 1.5
    with pytest.raises(InvariantViolation, match="mass"):
        check_conservation(before, conservation_totals(tampered))


def test_conservation_detects_momentum_tampering(ps):
    before = conservation_totals(ps)
    tampered = ps.copy()
    tampered.vel[3] += 10.0
    with pytest.raises(InvariantViolation, match="momentum"):
        check_conservation(before, conservation_totals(tampered))


# -- domain decomposition -------------------------------------------------

def test_decomposition_passes_on_partition():
    b = np.array([0, 100, 250, 1000], dtype=np.uint64)
    keys = np.array([5, 120, 999], dtype=np.uint64)
    check_decomposition(b, keys=keys, n_ranks=3)


def test_decomposition_detects_overlapping_domains():
    b = np.array([0, 250, 100, 1000], dtype=np.uint64)  # non-monotone
    with pytest.raises(InvariantViolation, match="overlapping or empty"):
        check_decomposition(b)


def test_decomposition_detects_empty_domain():
    b = np.array([0, 100, 100, 1000], dtype=np.uint64)
    with pytest.raises(InvariantViolation, match="overlapping or empty"):
        check_decomposition(b)


def test_decomposition_detects_uncovered_keys():
    b = np.array([10, 100, 1000], dtype=np.uint64)
    with pytest.raises(InvariantViolation, match="outside covered range"):
        check_decomposition(b, keys=np.array([5], dtype=np.uint64))


def test_decomposition_detects_rank_count_mismatch():
    b = np.array([0, 100, 1000], dtype=np.uint64)
    with pytest.raises(InvariantViolation, match="boundaries"):
        check_decomposition(b, n_ranks=3)


def test_ownership_detects_stray_keys():
    """Distributed form: a rank holding keys outside its interval must
    trip the (collective) ownership check on that rank."""
    decomp = DomainDecomposition(
        boundaries=np.array([0, 100, 200], dtype=np.uint64))

    def prog(comm):
        # rank 1 wrongly holds key 5, owned by rank 0
        keys = np.array([10, 20] if comm.rank == 0 else [5], dtype=np.uint64)
        check_ownership(comm, decomp, keys)

    with pytest.raises(RuntimeError, match="ownership"):
        spmd_run(2, prog)


def test_ownership_passes_on_disjoint_total(ps):
    decomp = DomainDecomposition(
        boundaries=np.array([0, 100, 200], dtype=np.uint64))

    def prog(comm):
        keys = np.array([10, 20] if comm.rank == 0 else [150],
                        dtype=np.uint64)
        check_ownership(comm, decomp, keys, n_total=3)
        return "ok"

    assert spmd_run(2, prog) == ["ok", "ok"]


# -- octree structure -----------------------------------------------------

def test_octree_passes_on_clean_tree(ps, tree):
    check_octree(tree, ps.pos, ps.mass)


def test_octree_detects_dropped_body(ps, tree):
    tree.body_count[0] -= 1  # root no longer covers every particle
    with pytest.raises(InvariantViolation, match="root body range"):
        check_octree(tree, ps.pos, ps.mass)


def test_octree_detects_child_range_corruption(ps, tree):
    c = int(np.flatnonzero(tree.n_children > 0)[1])
    tree.body_count[int(tree.first_child[c])] += 3
    with pytest.raises(InvariantViolation):
        check_octree(tree, ps.pos, ps.mass)


def test_octree_detects_mass_corruption(ps, tree):
    tree.mass[0] *= 1.01
    with pytest.raises(InvariantViolation, match="mass"):
        check_octree(tree, ps.pos, ps.mass)


def test_octree_detects_broken_order_permutation(ps, tree):
    tree.order[0] = tree.order[1]  # no longer a permutation
    with pytest.raises(InvariantViolation, match="permutation"):
        check_octree(tree, ps.pos, ps.mass)


def test_octree_detects_displaced_com(ps, tree):
    occupied = np.flatnonzero(tree.body_count > 0)
    tree.com[occupied[-1]] += 100.0
    with pytest.raises(InvariantViolation, match="COM"):
        check_octree(tree, ps.pos, ps.mass)


# -- LET completeness -----------------------------------------------------

def _sorted(ps, tree):
    return ps.pos[tree.order], ps.mass[tree.order]


def test_let_passes_on_clean_structures(ps, tree):
    spos, smass = _sorted(ps, tree)
    total = float(ps.mass.sum())
    check_let(boundary_structure(tree, spos, smass), total_mass=total)
    vmin, vmax = np.array([2.0, 2.0, 2.0]), np.array([4.0, 4.0, 4.0])
    let = build_let_for_box(tree, spos, smass, vmin, vmax)
    check_let(let, vmin, vmax, total_mass=total)


def test_let_detects_truncated_payload(ps, tree):
    spos, smass = _sorted(ps, tree)
    let = boundary_structure(tree, spos, smass)
    assert let.n_particles > 1
    truncated = dataclasses.replace(let,
                                    part_pos=let.part_pos[:-1],
                                    part_mass=let.part_mass[:-1])
    with pytest.raises(InvariantViolation, match="truncated|tile"):
        check_let(truncated)


def test_let_detects_dropped_exported_cell(ps, tree):
    spos, smass = _sorted(ps, tree)
    let = boundary_structure(tree, spos, smass)
    c = int(np.flatnonzero(let.body_count > 0)[0])
    let.body_count[c] = 0  # its particles are now orphaned
    with pytest.raises(InvariantViolation):
        check_let(let)


def test_let_detects_mac_incompleteness(ps, tree):
    """A pruned cell the viewer could open means pruned-away data the
    receiver may need: the completeness check must catch it."""
    spos, smass = _sorted(ps, tree)
    vmin, vmax = np.array([2.0, 2.0, 2.0]), np.array([4.0, 4.0, 4.0])
    let = build_let_for_box(tree, spos, smass, vmin, vmax)
    pruned = np.flatnonzero(let.pruned)
    assert len(pruned)
    let.r_crit[pruned[0]] = 1e9  # opening radius now reaches the viewer
    with pytest.raises(InvariantViolation, match="pruned cell"):
        check_let(let, vmin, vmax)


def test_let_detects_pruned_cell_with_children(ps, tree):
    spos, smass = _sorted(ps, tree)
    let = boundary_structure(tree, spos, smass)
    c = int(np.flatnonzero(let.n_children > 0)[0])
    let.pruned[c] = True
    with pytest.raises(InvariantViolation, match="pruned"):
        check_let(let)


def test_let_detects_mass_inconsistency(ps, tree):
    spos, smass = _sorted(ps, tree)
    let = boundary_structure(tree, spos, smass)
    let.mass[0] *= 1.01
    with pytest.raises(InvariantViolation, match="mass"):
        check_let(let)
