"""Achieved-flop-rate telemetry: closed-form counts, exact rates.

The paper's Sec. VI-A numbers are *derived* -- interaction tallies
times fixed per-interaction costs over wall time -- so a trace with
known tallies and virtual-clock durations must reproduce the reported
rate exactly, not approximately.  These tests pin that arithmetic with
hand-built traces and a direct-sum run whose interaction count has a
closed form (N x (N-1) pairs at 23 flops each).
"""

import json

import pytest

from repro import SimulationConfig
from repro.core.simulation import Simulation
from repro.gravity.flops import FLOPS_PER_PC, FLOPS_PER_PC_MONOPOLE, FLOPS_PER_PP
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock, chrome_trace_json
from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import (
    PAPER_PFLOPS,
    book_force_rate,
    perf_from_trace,
    perf_lines,
)
from repro.obs.report import _json_report, render_report
from repro.perfmodel.gpu import tree_kernel_rates


def _span(name, rank, step, dur_us, n_pp, n_pc, quadrupole=True, ts=0):
    return {"name": name, "cat": "phase", "ph": "X", "tid": rank,
            "pid": 0, "ts": ts, "dur": dur_us,
            "args": {"step": step, "n_pp": n_pp, "n_pc": n_pc,
                     "quadrupole": quadrupole}}


def _doc(events):
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def test_hand_built_trace_exact_rates():
    """One rank, one step: every number has a closed form."""
    # 1000 pp + 100 pc over 2 ms of kernel time.
    doc = _doc([_span("gravity_local", 0, 0, 1_000, 600, 40),
                _span("gravity_let", 0, 0, 1_000, 400, 60)])
    perf = perf_from_trace(doc)
    assert perf is not None

    flops = 23 * 1000 + 65 * 100
    assert perf["counts"] == {
        "n_pp": 1000, "n_pc": 100, "quadrupole": True, "flops": flops,
        "flops_per_pp": FLOPS_PER_PP, "flops_per_pc": FLOPS_PER_PC}

    rank0 = perf["per_rank"]["0"]
    assert rank0["gravity_local"]["flops"] == 23 * 600 + 65 * 40
    assert rank0["gravity_local"]["gflops"] == pytest.approx(
        (23 * 600 + 65 * 40) / 1.0e-3 / 1e9)
    combined = rank0["combined"]
    assert combined["seconds"] == pytest.approx(2.0e-3)
    assert combined["gflops"] == pytest.approx(flops / 2.0e-3 / 1e9)

    model = tree_kernel_rates().aggregate_gflops(1000, 100, True)
    assert rank0["model_efficiency"] == pytest.approx(
        combined["gflops"] / model)
    assert perf["model"]["mix_gflops"] == pytest.approx(model)

    [t] = perf["timeline"]
    assert t["flops"] == flops
    assert t["kernel_seconds"] == pytest.approx(2.0e-3)
    assert t["kernel_gflops"] == pytest.approx(flops / 2.0e-3 / 1e9)

    s = perf["sustained"]
    assert s["application_pflops"] == pytest.approx(
        s["application_gflops"] / 1e6)
    assert s["fraction_of_paper"] == pytest.approx(
        s["application_gflops"] / (PAPER_PFLOPS * 1e6))


def test_slowest_rank_reduction_in_timeline():
    """Two ranks: the step's kernel seconds are the slowest rank's."""
    doc = _doc([_span("gravity_local", 0, 0, 1_000, 500, 0),
                _span("gravity_local", 1, 0, 4_000, 500, 0)])
    perf = perf_from_trace(doc)
    [t] = perf["timeline"]
    assert t["kernel_seconds"] == pytest.approx(4.0e-3)
    assert t["n_pp"] == 1000
    # Per-rank rates still use each rank's own seconds.
    assert perf["per_rank"]["0"]["combined"]["gflops"] == pytest.approx(
        23 * 500 / 1.0e-3 / 1e9)
    assert perf["per_rank"]["1"]["combined"]["gflops"] == pytest.approx(
        23 * 500 / 4.0e-3 / 1e9)


def test_monopole_uses_23_flop_cell_cost():
    doc = _doc([_span("gravity_local", 0, 0, 1_000, 100, 100,
                      quadrupole=False)])
    perf = perf_from_trace(doc)
    assert perf["counts"]["flops_per_pc"] == FLOPS_PER_PC_MONOPOLE
    assert perf["counts"]["flops"] == 23 * 100 + 23 * 100


def test_trace_without_counts_yields_none():
    doc = _doc([{"name": "gravity_local", "cat": "phase", "ph": "X",
                 "tid": 0, "pid": 0, "ts": 0, "dur": 1000,
                 "args": {"step": 0}}])
    assert perf_from_trace(doc) is None
    assert perf_from_trace(_doc([])) is None


def test_direct_sum_closed_form_rate():
    """N x (N-1) pairs at 23 flops each, over virtual-clock ticks: the
    achieved rate must come out *exactly*, not approximately."""
    n = 32
    tracer = Tracer(clock=VirtualClock())
    sim = Simulation(plummer_model(n, seed=3),
                     SimulationConfig(force_method="direct", dt=0.01),
                     trace=tracer)
    sim.evolve(1)
    doc = json.loads(chrome_trace_json(tracer))
    perf = perf_from_trace(doc)

    # The first step runs two force passes (kickstart + KDK), each an
    # exact N x (N-1) direct sum.
    assert perf["counts"]["n_pp"] == 2 * n * (n - 1)
    assert perf["counts"]["n_pc"] == 0
    assert perf["counts"]["quadrupole"] is False
    assert perf["counts"]["flops"] == 23 * 2 * n * (n - 1)

    entry = perf["per_rank"]["0"]
    sec = entry["gravity_local"]["seconds"]
    assert sec > 0
    # Exact equality: both sides are the same float division.
    assert entry["gravity_local"]["gflops"] == \
        23 * 2 * n * (n - 1) / sec / 1e9


def test_report_carries_perf_section():
    n = 24
    tracer = Tracer(clock=VirtualClock())
    sim = Simulation(plummer_model(n, seed=3),
                     SimulationConfig(force_method="direct", dt=0.01),
                     trace=tracer)
    sim.evolve(2)
    doc = json.loads(chrome_trace_json(tracer))

    text = render_report(doc)
    assert "Performance (Sec. VI-A" in text
    # 3 direct-sum passes over 2 steps: kickstart + one per KDK step.
    assert f"{3 * n * (n - 1)} pp x 23 flops" in text

    out = _json_report(doc)
    assert out["perf"]["counts"]["n_pp"] == 3 * n * (n - 1)
    assert [t["n_pp"] for t in out["perf"]["timeline"]] == \
        [2 * n * (n - 1), n * (n - 1)]


def test_perf_lines_renders_none_rates():
    doc = _doc([_span("gravity_local", 0, 0, 0, 10, 0)])  # zero duration
    perf = perf_from_trace(doc)
    assert perf["per_rank"]["0"]["combined"]["gflops"] is None
    lines = perf_lines(perf)
    assert any("--" in line for line in lines)


def test_book_force_rate_gauge():
    reg = MetricsRegistry()
    book_force_rate(reg, rank=1, flops=4.6e9, gravity_seconds=2.0)
    gauge = reg.get("force_gflops")
    assert gauge.series() == {("1",): pytest.approx(2.3)}
    # Zero elapsed time books nothing rather than dividing by zero.
    book_force_rate(reg, rank=2, flops=1e9, gravity_seconds=0.0)
    assert ("2",) not in gauge.series()
