"""Tests for bounding boxes and position -> key mapping."""

import numpy as np
import pytest

from repro.sfc import BoundingBox, cell_geometry, keys_for_positions
from repro.sfc.morton import KEY_BITS_PER_DIM


def test_from_positions_contains_all():
    rng = np.random.default_rng(2)
    pos = rng.normal(size=(500, 3)) * [5, 1, 0.2]
    box = BoundingBox.from_positions(pos)
    assert np.all(pos >= box.origin)
    assert np.all(pos <= box.origin + box.size)


def test_box_is_cubic():
    pos = np.array([[0.0, 0.0, 0.0], [10.0, 1.0, 0.5]])
    box = BoundingBox.from_positions(pos)
    # size is scalar; all axes share it.
    assert box.size > 10.0


def test_degenerate_single_point():
    box = BoundingBox.from_positions(np.zeros((1, 3)))
    assert box.size > 0


def test_zero_particles_raises():
    with pytest.raises(ValueError):
        BoundingBox.from_positions(np.empty((0, 3)))


def test_bad_shape_raises():
    with pytest.raises(ValueError):
        BoundingBox.from_positions(np.zeros((5, 2)))


def test_merge_covers_members():
    b1 = BoundingBox(origin=np.zeros(3), size=1.0)
    b2 = BoundingBox(origin=np.array([5.0, 0.0, 0.0]), size=2.0)
    merged = BoundingBox.merge([b1, b2])
    for b in (b1, b2):
        assert np.all(merged.origin <= b.origin + 1e-12)
        assert np.all(merged.origin + merged.size >= b.origin + b.size - 1e-12)


def test_grid_coordinates_clip():
    box = BoundingBox(origin=np.zeros(3), size=1.0)
    ijk = box.grid_coordinates(np.array([[2.0, -1.0, 0.5]]))
    nmax = (1 << KEY_BITS_PER_DIM) - 1
    assert ijk[0][0] == nmax and ijk[1][0] == 0


def test_keys_sorted_particles_are_spatially_coherent():
    rng = np.random.default_rng(3)
    pos = rng.uniform(size=(2000, 3))
    keys, box = keys_for_positions(pos, curve="hilbert")
    order = np.argsort(keys)
    steps = np.linalg.norm(np.diff(pos[order], axis=0), axis=1)
    # Mean jump along the curve should be far below the random-pair mean.
    assert steps.mean() < 0.25 * np.linalg.norm(
        pos[rng.permutation(2000)] - pos, axis=1).mean() + 1e-9


@pytest.mark.parametrize("curve", ["hilbert", "morton"])
def test_cell_geometry_contains_particles(curve):
    """Every particle's key must land inside the decoded root/child cell."""
    rng = np.random.default_rng(4)
    pos = rng.normal(size=(300, 3))
    box = BoundingBox.from_positions(pos)
    keys = box.keys(pos, curve)
    # Treat each particle's key as a level-3 cell and verify containment.
    level = np.full(len(keys), 3)
    centers, half = cell_geometry(keys, level, box, curve)
    assert np.all(np.abs(pos - centers) <= half[:, None] * (1 + 1e-9))


def test_unknown_curve_raises():
    box = BoundingBox(origin=np.zeros(3), size=1.0)
    with pytest.raises(ValueError):
        box.keys(np.zeros((1, 3)), "peano")
    with pytest.raises(ValueError):
        cell_geometry(np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=int),
                      box, "zigzag")


def test_root_cell_geometry_is_box():
    box = BoundingBox(origin=np.array([-1.0, -1.0, -1.0]), size=2.0)
    centers, half = cell_geometry(np.zeros(1, dtype=np.uint64),
                                  np.zeros(1, dtype=np.int64), box)
    assert np.allclose(centers[0], [0, 0, 0])
    assert half[0] == pytest.approx(1.0)
