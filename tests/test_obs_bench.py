"""Benchmark registry, schema, history store and regression verdicts."""

import json

import pytest

from repro.obs.bench import (
    REGISTRY,
    BenchError,
    BenchResult,
    HistoryStore,
    compare_results,
    history_lines,
    history_verdict,
    main,
    register_bench,
    validate_bench_result,
)


def _result(**kw):
    base = dict(bench="demo", config={"n": 100},
                counts={"n_pp": 9900.0}, wall={"wall_s": 0.5})
    base.update(kw)
    return BenchResult(**base)


# -- schema -----------------------------------------------------------------

def test_round_trip():
    r = _result(meta={"note": "x"})
    d = json.loads(json.dumps(r.to_dict(), sort_keys=True))
    assert BenchResult.from_dict(d) == r


def test_validation_rejects_missing_keys():
    d = _result().to_dict()
    del d["bench"]
    with pytest.raises(BenchError, match="missing required key"):
        validate_bench_result(d)


def test_validation_rejects_bad_metrics():
    with pytest.raises(BenchError, match="must be a number"):
        validate_bench_result(_result(counts={"flag": True}).to_dict())
    with pytest.raises(BenchError, match="must be a number"):
        validate_bench_result(_result(wall={"s": "fast"}).to_dict())
    with pytest.raises(BenchError, match="not finite"):
        validate_bench_result(_result(wall={"s": float("nan")}).to_dict())


def test_validation_rejects_schema_mismatch():
    d = _result().to_dict()
    d["schema"] = 99
    with pytest.raises(BenchError, match="schema"):
        validate_bench_result(d)


def test_host_fingerprint_attached_by_default():
    r = _result()
    assert r.host["cpu_count"] >= 1
    assert r.host["python"]


# -- history store ----------------------------------------------------------

def test_history_append_and_load(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(_result(wall={"wall_s": 0.5}))
    store.append(_result(wall={"wall_s": 0.6}))
    path = store.path("demo")
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        validate_bench_result(json.loads(line))
    loaded = store.load("demo")
    assert [r.wall["wall_s"] for r in loaded] == [0.5, 0.6]


def test_history_load_missing_is_empty(tmp_path):
    assert HistoryStore(tmp_path).load("nope") == []


def test_history_load_rejects_corrupt_line(tmp_path):
    store = HistoryStore(tmp_path)
    store.append(_result())
    store.path("demo").write_text(
        store.path("demo").read_text() + "{not json\n")
    with pytest.raises(BenchError, match="demo.jsonl:2"):
        store.load("demo")


# -- compare / verdicts -----------------------------------------------------

def test_compare_identical_is_clean():
    diff = compare_results(_result(), _result())
    assert diff["comparable"]
    assert diff["count_regressions"] == []
    assert diff["wall_regressions"] == []


def test_compare_count_drift_gates_both_directions():
    slower = compare_results(_result(), _result(counts={"n_pp": 9901.0}))
    assert slower["count_regressions"] == ["n_pp"]
    faster = compare_results(_result(), _result(counts={"n_pp": 9899.0}))
    assert faster["count_regressions"] == ["n_pp"]


def test_compare_wall_regression_respects_threshold_and_floor():
    a, b = _result(wall={"wall_s": 1.0}), _result(wall={"wall_s": 1.3})
    assert compare_results(a, b, threshold=0.1)["wall_regressions"] == \
        ["wall_s"]
    assert compare_results(a, b, threshold=0.5)["wall_regressions"] == []
    # The absolute floor swallows small regressions outright.
    assert compare_results(a, b, threshold=0.1,
                           min_abs=0.5)["wall_regressions"] == []


def test_verdict_picks_latest_same_config_baseline():
    entries = [
        _result(config={"n": 100}, counts={"n_pp": 9900.0}),
        _result(config={"n": 200}, counts={"n_pp": 39800.0}),
        _result(config={"n": 100}, counts={"n_pp": 9900.0}),
    ]
    v = history_verdict(entries)
    assert v["verdict"] == "OK"
    # Drift against the n=100 ancestor, not the n=200 neighbour.
    entries[-1] = _result(config={"n": 100}, counts={"n_pp": 9901.0})
    assert history_verdict(entries)["verdict"] == "REGRESSION"


def test_verdict_no_baseline():
    assert history_verdict([])["verdict"] == "NO-BASELINE"
    only = [_result(config={"n": 1})]
    assert history_verdict(only)["verdict"] == "NO-BASELINE"
    mixed = [_result(config={"n": 1}), _result(config={"n": 2})]
    assert history_verdict(mixed)["verdict"] == "NO-BASELINE"


def test_wall_regression_never_flips_verdict():
    entries = [_result(wall={"wall_s": 1.0}),
               _result(wall={"wall_s": 100.0})]
    v = history_verdict(entries)
    assert v["verdict"] == "OK"
    assert v["wall_regressions"] == ["wall_s"]


def test_history_lines_sparkline_and_verdict():
    entries = [_result(wall={"wall_s": w}) for w in (1.0, 2.0, 3.0)]
    text = "\n".join(history_lines("demo", entries,
                                   history_verdict(entries)))
    assert "3 recorded run(s)" in text
    assert "verdict: OK" in text
    assert "▂▅█" in text  # rising wall_s trajectory


# -- CLI --------------------------------------------------------------------

@pytest.fixture
def dummy_bench(tmp_path):
    """Register a deterministic in-process bench; CLI resolves it from
    REGISTRY without scanning benchmarks/."""
    calls = {"n_pp": 9900.0}

    @register_bench("dummy", description="test bench")
    def run(n=100):
        return BenchResult(bench="dummy", config={"n": n},
                           counts=dict(calls), wall={"wall_s": 0.1})

    yield calls
    REGISTRY.pop("dummy", None)


def test_cli_run_and_history_ok(dummy_bench, tmp_path, capsys):
    hist = str(tmp_path / "history")
    assert main(["run", "dummy", "--history-dir", hist]) == 0
    assert main(["run", "dummy", "--history-dir", hist]) == 0
    assert main(["history", "dummy", "--history-dir", hist]) == 0
    out = capsys.readouterr().out
    assert "2 recorded run(s)" in out
    assert "verdict: OK" in out


def test_cli_history_gates_on_count_drift(dummy_bench, tmp_path, capsys):
    hist = str(tmp_path / "history")
    assert main(["run", "dummy", "--history-dir", hist]) == 0
    dummy_bench["n_pp"] = 9901.0
    assert main(["run", "dummy", "--history-dir", hist]) == 0
    assert main(["history", "dummy", "--history-dir", hist]) == 1
    assert "verdict: REGRESSION" in capsys.readouterr().out


def test_cli_run_param_override(dummy_bench, tmp_path, capsys):
    hist = str(tmp_path / "history")
    assert main(["run", "dummy", "-p", "n=250", "--json",
                 "--history-dir", hist]) == 0
    out = json.loads(capsys.readouterr().out)
    assert out["config"]["n"] == 250


def test_cli_compare_files(dummy_bench, tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(_result().to_dict()))
    b.write_text(json.dumps(_result().to_dict()))
    assert main(["compare", str(a), str(b)]) == 0
    b.write_text(json.dumps(_result(counts={"n_pp": 1.0}).to_dict()))
    assert main(["compare", str(a), str(b)]) == 1
    assert "<< REGRESSION" in capsys.readouterr().out


def test_cli_unknown_bench_errors(tmp_path, capsys):
    assert main(["run", "no_such_bench",
                 "--benchmarks-dir", str(tmp_path)]) == 2
    assert "unknown bench" in capsys.readouterr().err


def test_cli_run_no_append(dummy_bench, tmp_path):
    hist = tmp_path / "history"
    assert main(["run", "dummy", "--no-append",
                 "--history-dir", str(hist)]) == 0
    assert not (hist / "dummy.jsonl").exists()
