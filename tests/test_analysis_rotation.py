"""Tests for rotation-curve and Toomre-Q measurement."""

import numpy as np
import pytest

from repro.analysis.rotation import (
    circular_velocity_from_mass,
    measured_rotation_curve,
    toomre_q_profile,
)
from repro.constants import MILKY_WAY_PAPER
from repro.ics import MilkyWayModel, milky_way_model
from repro.particles import COMPONENT_DISK


def test_rotation_curve_of_solid_rotator():
    rng = np.random.default_rng(114)
    n = 20000
    R = rng.uniform(1.0, 10.0, n)
    phi = rng.uniform(0, 2 * np.pi, n)
    pos = np.stack([R * np.cos(phi), R * np.sin(phi), np.zeros(n)], axis=1)
    omega = 0.3
    vel = np.stack([-omega * pos[:, 1], omega * pos[:, 0], np.zeros(n)], axis=1)
    Rc, mean, disp = measured_rotation_curve(pos, vel, np.ones(n), r_max=10.0)
    valid = ~np.isnan(mean)
    assert np.allclose(mean[valid], omega * Rc[valid], rtol=0.02)
    assert np.nanmax(disp) < 0.05


def test_empty_bins_are_nan():
    pos = np.array([[1.0, 0, 0]])
    vel = np.array([[0.0, 1.0, 0]])
    Rc, mean, disp = measured_rotation_curve(pos, vel, np.ones(1),
                                             r_max=10.0, bins=10)
    assert np.isnan(mean).sum() == 9
    assert mean[1] == pytest.approx(1.0)


def test_circular_velocity_from_point_mass():
    pos = np.zeros((1, 3))
    mass = np.array([4.0])
    radii = np.array([1.0, 4.0])
    vc = circular_velocity_from_mass(pos, mass, radii)
    assert vc[0] == pytest.approx(2.0)
    assert vc[1] == pytest.approx(1.0)


def test_milky_way_realization_matches_analytic_curve():
    """Measured disk rotation must track the analytic v_c within the
    asymmetric-drift allowance."""
    mw = milky_way_model(30000, seed=115)
    disk = mw.select_component(COMPONENT_DISK)
    Rc, mean, _ = measured_rotation_curve(disk.pos, disk.vel, disk.mass,
                                          r_max=15.0, bins=15)
    model = MilkyWayModel(MILKY_WAY_PAPER)
    vc = model.circular_velocity(Rc)
    sel = (~np.isnan(mean)) & (Rc > 3) & (Rc < 12)
    assert np.all(mean[sel] > 0.75 * vc[sel])
    assert np.all(mean[sel] < 1.1 * vc[sel])


def test_toomre_q_near_target():
    """Measured Q of a fresh realization must sit near the requested
    disk_toomre_q around the reference radius."""
    mw = milky_way_model(40000, seed=116)
    disk = mw.select_component(COMPONENT_DISK)
    Rc, q = toomre_q_profile(disk.pos, disk.vel, disk.mass, mw.pos, mw.mass,
                             r_max=12.0, bins=12)
    sel = (Rc > 4.0) & (Rc < 9.0) & np.isfinite(q)
    assert sel.any()
    assert np.nanmedian(q[sel]) == pytest.approx(
        MILKY_WAY_PAPER.disk_toomre_q, rel=0.4)


def test_q_profile_handles_sparse_bins():
    rng = np.random.default_rng(117)
    pos = rng.normal(size=(20, 3))
    vel = rng.normal(size=(20, 3))
    Rc, q = toomre_q_profile(pos, vel, np.ones(20), pos, np.ones(20))
    assert len(Rc) == 12  # no crash; mostly NaN is fine
