"""Tests for hardware descriptions and the Table I rendering."""

import pytest

from repro.perfmodel import C2075, K20X, PIZ_DAINT, TITAN, table1_rows
from repro.perfmodel.network import (
    allgather_seconds,
    average_hops,
    comm_time_seconds,
    effective_bandwidth_gbs,
    effective_latency_us,
    neighbor_exchange_seconds,
)


def test_table1_values():
    """Every Table I entry must be reproduced."""
    rows = {r[0]: r[1:] for r in table1_rows()}
    assert rows["Setup"] == ("Piz Daint", "Titan")
    assert rows["GPU model"] == ("K20X", "K20X")
    assert rows["Total GPUs"] == ("5272", "18688")
    assert rows["GPUs used"] == ("5200", "18600")
    assert rows["GPU RAM (ECC enabled)"] == ("5.4 GB", "5.4 GB")
    assert rows["CPU model"] == ("Xeon E5-2670", "Opteron 6274")
    assert rows["Node RAM"] == ("32GB", "32GB")
    assert rows["Network"] == ("Aries/dragonfly", "Gemini/torus3d")


def test_gpu_specs():
    assert K20X.peak_sp_tflops == pytest.approx(3.95)
    assert K20X.arch == "kepler"
    assert C2075.arch == "fermi"
    assert K20X.mem_gb == 5.4


def test_machine_compositions():
    assert PIZ_DAINT.network.topology == "dragonfly"
    assert TITAN.network.topology == "torus3d"
    assert TITAN.cpu_slowdown > PIZ_DAINT.cpu_slowdown


def test_torus_hops_grow_with_machine():
    assert average_hops(TITAN.network, 18600) > average_hops(TITAN.network, 1024)


def test_dragonfly_hops_bounded():
    assert average_hops(PIZ_DAINT.network, 5200) <= 3.0


def test_dragonfly_beats_torus_at_scale():
    """The paper's rationale for Piz Daint's better communication rows."""
    p = 4096
    assert effective_latency_us(PIZ_DAINT.network, p) < \
        effective_latency_us(TITAN.network, p)
    assert effective_bandwidth_gbs(PIZ_DAINT.network, p) > \
        effective_bandwidth_gbs(TITAN.network, p)


def test_allgather_grows_with_ranks():
    net = PIZ_DAINT.network
    assert allgather_seconds(net, 4096, 1e5) > allgather_seconds(net, 512, 1e5)
    assert allgather_seconds(net, 1, 1e5) == 0.0


def test_neighbor_exchange():
    net = TITAN.network
    t = neighbor_exchange_seconds(net, 1024, 40, 1e5)
    assert t > 0
    assert neighbor_exchange_seconds(net, 1024, 0, 1e5) == 0.0


def test_comm_time_composition():
    net = TITAN.network
    total = comm_time_seconds(net, 1024, 1e5, 4e5, 40)
    assert total == pytest.approx(
        allgather_seconds(net, 1024, 1e5)
        + neighbor_exchange_seconds(net, 1024, 40, 4e5))


def test_single_node_no_comm():
    assert comm_time_seconds(TITAN.network, 1, 1e5, 1e5) == 0.0


def test_unknown_topology_raises():
    from repro.perfmodel.hardware import NetworkSpec
    bad = NetworkSpec(name="x", topology="hypercube", latency_us=1, bandwidth_gbs=1)
    with pytest.raises(ValueError):
        average_hops(bad, 64)
    with pytest.raises(ValueError):
        effective_bandwidth_gbs(bad, 64)
