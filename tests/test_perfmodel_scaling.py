"""Tests for the Fig. 4 scaling curves and headline results."""

import pytest

from repro.perfmodel import (
    PIZ_DAINT,
    TITAN,
    strong_scaling,
    time_to_solution,
    weak_scaling,
)


def test_peak_performance_headline():
    """The paper's title numbers: 24.77 Pflops application, 33.49 Pflops
    GPU at 18600 GPUs with 242 billion particles."""
    pts = weak_scaling(TITAN, [1, 18600], n_per_gpu=13e6)
    peak = pts[1]
    assert peak.application_tflops / 1e3 == pytest.approx(24.77, rel=0.05)
    assert peak.gpu_kernel_tflops / 1e3 == pytest.approx(33.49, rel=0.05)
    assert peak.n_total == pytest.approx(242e9, rel=0.01)


def test_fraction_of_theoretical_peak():
    """Sec. VI-D: 46% of peak during force computation, 34% overall."""
    pts = weak_scaling(TITAN, [18600], n_per_gpu=13e6)
    theoretical = 18600 * 3.95e3  # Gflops -> Tflops: 73.2 Pflops
    assert pts[0].gpu_kernel_tflops / theoretical * 1e3 == pytest.approx(0.46, abs=0.02)
    assert pts[0].application_tflops / theoretical * 1e3 == pytest.approx(0.34, abs=0.02)


def test_titan_efficiency_at_full_scale():
    """86% application efficiency vs a single GPU (Sec. VI-B)."""
    pts = weak_scaling(TITAN, [1, 18600])
    assert pts[1].efficiency_vs(pts[0]) == pytest.approx(0.86, abs=0.03)


def test_piz_daint_efficiency_above_95():
    """Parallel efficiency never below 95% on Piz Daint (abstract)."""
    pts = weak_scaling(PIZ_DAINT, [1, 64, 256, 1024, 2048, 4096, 5200])
    for p in pts[1:]:
        assert p.efficiency_vs(pts[0]) >= 0.93


def test_titan_efficiency_90_at_midscale():
    """~90% up to 8192 GPUs on Titan (Sec. VI-B)."""
    pts = weak_scaling(TITAN, [1, 4096, 8192])
    for p in pts[1:]:
        assert p.efficiency_vs(pts[0]) == pytest.approx(0.90, abs=0.04)


def test_gpu_curve_above_gravity_above_application():
    """Fig. 4 ordering of the three curves."""
    pts = weak_scaling(TITAN, [2048])
    p = pts[0]
    assert p.gpu_kernel_tflops >= p.gravity_tflops >= p.application_tflops


def test_near_linear_weak_scaling():
    pts = weak_scaling(PIZ_DAINT, [1, 16, 256, 4096])
    rates = [p.application_tflops / p.n_gpus for p in pts]
    assert min(rates) / max(rates) > 0.9


def test_strong_scaling_parallel_efficiency():
    """Strong scaling: 95% Piz Daint 2048->4096; 87% Titan 4096->8192."""
    pd = strong_scaling(PIZ_DAINT, 26.6e9, [2048, 4096])
    eff_pd = (pd[1].application_tflops / pd[0].application_tflops) / 2.0
    assert eff_pd == pytest.approx(0.95, abs=0.05)
    ti = strong_scaling(TITAN, 53.2e9, [4096, 8192])
    eff_ti = (ti[1].application_tflops / ti[0].application_tflops) / 2.0
    assert eff_ti == pytest.approx(0.87, abs=0.06)


def test_more_particles_per_gpu_raises_application_rate():
    """Sec. VI-B: 'It is possible to do runs with up to 20 million
    particles per K20X, and thereby achieve higher application
    performance, as more time is spent on the GPU'."""
    lo = weak_scaling(TITAN, [4096], n_per_gpu=13e6)[0]
    hi = weak_scaling(TITAN, [4096], n_per_gpu=20e6)[0]
    assert hi.application_tflops / hi.n_gpus > lo.application_tflops / lo.n_gpus


def test_time_to_solution_one_week():
    """Sec. VI-C: 242 B particles, 18600 GPUs, 8 Gyr in about a week."""
    t = time_to_solution()
    assert t["seconds_per_step_barred"] < 5.6
    assert 4.0 < t["wall_clock_days"] < 8.5
    assert t["n_steps"] == pytest.approx(106667, rel=0.01)


def test_time_to_solution_modest_model():
    """106 B particles on 8192 nodes: 5.1 s/step, just over six days."""
    t = time_to_solution(n_gpus=8192, n_total=106e9)
    assert t["seconds_per_step_barred"] == pytest.approx(5.1, rel=0.06)
    assert 5.5 < t["wall_clock_days"] < 7.5
