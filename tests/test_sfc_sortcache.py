"""SortCache: identity / reuse / repair / cold permutation reuse."""

import numpy as np
import pytest

from repro.sfc import SORT_MODES, SortCache


def _check(cache, keys, expect_mode):
    order = cache.order_for(keys)
    assert cache.last_mode == expect_mode
    assert cache.last_mode in SORT_MODES
    sk = keys[order]
    assert np.all(sk[:-1] <= sk[1:])
    return order


def test_cold_then_reuse():
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1 << 60, 5000).astype(np.uint64)
    cache = SortCache()
    order = _check(cache, keys, "cold")
    np.testing.assert_array_equal(order,
                                  np.argsort(keys, kind="stable"))
    # Same keys again: the cached permutation still sorts them.
    again = _check(cache, keys, "reuse")
    assert again is order


def test_repair_after_perturbation():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 1 << 60, 5000).astype(np.uint64)
    cache = SortCache()
    cache.order_for(keys)
    # Perturb a few keys: cached order no longer sorts, repair must.
    moved = keys.copy()
    moved[::97] = rng.integers(0, 1 << 60, len(moved[::97])).astype(np.uint64)
    order = _check(cache, moved, "repair")
    # Distinct keys: repair equals a cold stable sort exactly.
    np.testing.assert_array_equal(order, np.argsort(moved, kind="stable"))


def test_identity_on_sorted_keys():
    keys = np.arange(100, dtype=np.uint64)
    cache = SortCache()
    order = _check(cache, keys, "identity")
    np.testing.assert_array_equal(order, np.arange(100))


def test_length_change_falls_back():
    rng = np.random.default_rng(2)
    cache = SortCache()
    cache.order_for(rng.integers(0, 1 << 60, 500).astype(np.uint64))
    keys = rng.integers(0, 1 << 60, 700).astype(np.uint64)
    _check(cache, keys, "cold")


def test_invalidate_forces_cold():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 1 << 60, 500).astype(np.uint64)
    cache = SortCache()
    cache.order_for(keys)
    cache.invalidate()
    assert cache.last_mode is None
    _check(cache, keys, "cold")


def test_empty_and_singleton():
    cache = SortCache()
    assert len(cache.order_for(np.empty(0, dtype=np.uint64))) == 0
    assert cache.last_mode == "identity"
    cache2 = SortCache()
    np.testing.assert_array_equal(
        cache2.order_for(np.array([5], dtype=np.uint64)), [0])


def test_build_octree_accepts_cached_order():
    from repro.octree import build_octree
    from repro.sfc import BoundingBox
    rng = np.random.default_rng(4)
    pos = rng.normal(size=(800, 3))
    box = BoundingBox.from_positions(pos)
    keys = box.keys(pos, "hilbert")
    cache = SortCache()
    t_cold = build_octree(pos, box=box, keys=keys)
    t_cached = build_octree(pos, box=box, keys=keys,
                            order=cache.order_for(keys))
    np.testing.assert_array_equal(t_cold.order, t_cached.order)
    np.testing.assert_array_equal(t_cold.cell_key, t_cached.cell_key)
    np.testing.assert_array_equal(t_cold.body_first, t_cached.body_first)
