"""Tests for snapshot I/O and restart."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.ics import plummer_model
from repro.io import load_snapshot, save_snapshot


def test_roundtrip(tmp_path):
    ps = plummer_model(500, seed=74)
    ps.component[:] = 1
    path = tmp_path / "snap.npz"
    save_snapshot(path, ps, time=2.5, step=10, extra={"theta": 0.4})
    loaded, meta = load_snapshot(path)
    assert np.array_equal(loaded.pos, ps.pos)
    assert np.array_equal(loaded.vel, ps.vel)
    assert np.array_equal(loaded.mass, ps.mass)
    assert np.array_equal(loaded.ids, ps.ids)
    assert np.array_equal(loaded.component, ps.component)
    assert meta["time"] == 2.5
    assert meta["step"] == 10
    assert meta["theta"] == 0.4
    assert meta["n"] == 500


def test_restart_continues_identically(tmp_path):
    """A restarted run must follow the uninterrupted run bit-for-bit
    (the dual restart/analysis purpose of Sec. VI-C)."""
    cfg = SimulationConfig(theta=0.5, softening=0.02, dt=0.01)
    ps = plummer_model(800, seed=75)

    straight = Simulation(ps.copy(), cfg)
    straight.evolve(6)

    first = Simulation(ps.copy(), cfg)
    first.evolve(3)
    save_snapshot(tmp_path / "mid.npz", first.particles, time=first.time,
                  step=first.step_count)
    mid, meta = load_snapshot(tmp_path / "mid.npz")
    resumed = Simulation(mid, cfg)
    resumed.time = meta["time"]
    resumed.step_count = meta["step"]
    resumed.evolve(3)

    assert resumed.step_count == straight.step_count
    assert np.allclose(resumed.particles.pos, straight.particles.pos,
                       atol=1e-13)


def test_version_check(tmp_path):
    ps = plummer_model(10, seed=76)
    path = tmp_path / "s.npz"
    save_snapshot(path, ps)
    # corrupt the version
    import json
    data = dict(np.load(path))
    meta = json.loads(bytes(data["meta"].tobytes()).decode())
    meta["version"] = 99
    data["meta"] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    np.savez(path, **data)
    with pytest.raises(ValueError):
        load_snapshot(path)
