"""Tests for inverse-CDF sampling."""

import numpy as np
import pytest
from scipy import stats

from repro.ics import PlummerProfile, isotropic_directions, sample_radii
from repro.ics.sampling import spherical_positions


def test_sampled_radii_match_cdf():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    rng = np.random.default_rng(30)
    r = sample_radii(p.mass_fraction, 30.0, rng, 50000)
    # KS test against the analytic (truncated) CDF.
    norm = float(p.mass_fraction(np.array([30.0]))[0])
    stat, pvalue = stats.kstest(r, lambda x: p.mass_fraction(x) / norm)
    assert pvalue > 1e-3


def test_sample_radii_bounded():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    rng = np.random.default_rng(31)
    r = sample_radii(p.mass_fraction, 5.0, rng, 1000)
    assert r.min() >= 0.0
    assert r.max() <= 5.0


def test_sample_radii_zero_n():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    assert len(sample_radii(p.mass_fraction, 5.0, np.random.default_rng(0), 0)) == 0


def test_isotropic_directions_unit_norm():
    d = isotropic_directions(np.random.default_rng(32), 1000)
    assert np.allclose(np.linalg.norm(d, axis=1), 1.0)


def test_isotropic_directions_uniform():
    d = isotropic_directions(np.random.default_rng(33), 100000)
    # Means vanish, component variances are 1/3.
    assert np.allclose(d.mean(axis=0), 0.0, atol=0.01)
    assert np.allclose(d.var(axis=0), 1.0 / 3.0, atol=0.01)
    # cos(theta) uniform on [-1, 1].
    stat, pvalue = stats.kstest(d[:, 2], stats.uniform(loc=-1, scale=2).cdf)
    assert pvalue > 1e-3


def test_spherical_positions_radial_distribution():
    p = PlummerProfile(mass=1.0, scale_radius=1.0)
    pos = spherical_positions(p.mass_fraction, 20.0,
                              np.random.default_rng(34), 30000)
    r = np.linalg.norm(pos, axis=1)
    # Half-mass radius ~ 1.305 a for Plummer.
    assert np.median(r) == pytest.approx(1.305, rel=0.05)
