"""Tests for the group-centric Barnes-Hut tree walk."""

import numpy as np
import pytest

from repro.gravity import direct_forces, tree_forces
from repro.gravity.treewalk import group_aabbs, walk_interaction_lists
from repro.octree import build_octree, compute_moments, compute_opening_radii, make_groups


def _forces(ps, theta, eps=0.02, **kw):
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    return tree_forces(tree, ps.pos, ps.mass, theta=theta, eps=eps, **kw), tree


def _rel_err(a, b):
    return np.linalg.norm(a - b, axis=1) / np.linalg.norm(b, axis=1)


def test_accuracy_at_production_theta(small_plummer, plummer_direct):
    res, _ = _forces(small_plummer, theta=0.4)
    err = _rel_err(res.acc, plummer_direct[0])
    assert np.median(err) < 2e-4
    assert err.max() < 0.05


def test_converges_to_direct_as_theta_shrinks(small_plummer, plummer_direct):
    medians = []
    for theta in (1.0, 0.5, 0.25):
        res, _ = _forces(small_plummer, theta=theta)
        medians.append(np.median(_rel_err(res.acc, plummer_direct[0])))
    assert medians[0] > medians[1] > medians[2]
    assert medians[2] < 5e-5


def test_potential_accuracy(small_plummer, plummer_direct):
    res, _ = _forces(small_plummer, theta=0.4)
    err = np.abs((res.phi - plummer_direct[1]) / plummer_direct[1])
    assert np.median(err) < 5e-5


def test_tiny_theta_equals_direct():
    """At a tiny opening angle every interaction is p-p and the result
    matches direct summation to round-off ("reduces to a rather
    inefficient direct N-body code")."""
    rng = np.random.default_rng(24)
    from repro.particles import ParticleSet
    ps = ParticleSet(pos=rng.normal(size=(300, 3)),
                     vel=np.zeros((300, 3)),
                     mass=rng.uniform(0.5, 1.0, 300))
    res, _ = _forces(ps, theta=0.02)
    acc_d, phi_d = direct_forces(ps.pos, ps.mass, eps=0.02)
    assert np.allclose(res.acc, acc_d, rtol=1e-8, atol=1e-10)
    assert res.counts.n_pc == 0 or res.counts.n_pp > 0.9 * 300 * 299


def test_quadrupole_beats_monopole(small_plummer, plummer_direct):
    res_q, _ = _forces(small_plummer, theta=0.6, quadrupole=True)
    res_m, _ = _forces(small_plummer, theta=0.6, quadrupole=False)
    err_q = np.median(_rel_err(res_q.acc, plummer_direct[0]))
    err_m = np.median(_rel_err(res_m.acc, plummer_direct[0]))
    assert err_q < err_m


def test_bonsai_mac_beats_bh_at_same_theta(small_plummer, plummer_direct):
    res_bonsai, _ = _forces(small_plummer, theta=0.6, mac="bonsai")
    res_bh, _ = _forces(small_plummer, theta=0.6, mac="bh")
    err_bonsai = np.median(_rel_err(res_bonsai.acc, plummer_direct[0]))
    err_bh = np.median(_rel_err(res_bh.acc, plummer_direct[0]))
    # The COM-offset term only ever opens *more* cells -> at least as good.
    assert err_bonsai <= err_bh * 1.05
    assert res_bonsai.counts.n_pp + res_bonsai.counts.n_pc >= \
        res_bh.counts.n_pp + res_bh.counts.n_pc


def test_momentum_approximately_conserved(small_plummer):
    res, _ = _forces(small_plummer, theta=0.4)
    f = (small_plummer.mass[:, None] * res.acc).sum(axis=0)
    fmag = np.abs(small_plummer.mass[:, None] * res.acc).sum()
    assert np.linalg.norm(f) < 1e-3 * fmag


def test_counts_match_walk_lists(small_plummer):
    """The tallied interaction counts must equal the walk's list sizes."""
    ps = small_plummer
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    res = tree_forces(tree, ps.pos, ps.mass, theta=0.5, eps=0.02)
    compute_opening_radii(tree, 0.5, "bonsai")
    spos = ps.pos[tree.order]
    gmin, gmax = group_aabbs(tree, spos)
    pc_g, pc_c, pp_g, pp_c, _ = walk_interaction_lists(tree, gmin, gmax)
    n_pc = int(tree.group_count[pc_g].sum())
    n_pp = int((tree.group_count[pp_g] * tree.body_count[pp_c]).sum())
    assert res.counts.n_pc == n_pc
    assert res.counts.n_pp == n_pp


def test_chunking_invariance(small_plummer):
    r1, _ = _forces(small_plummer, theta=0.5, chunk=1 << 21)
    r2, _ = _forces(small_plummer, theta=0.5, chunk=4096)
    assert np.allclose(r1.acc, r2.acc, rtol=1e-10)
    assert r1.counts.n_pp == r2.counts.n_pp
    assert r1.counts.n_pc == r2.counts.n_pc


def test_walk_covers_total_mass(small_plummer):
    """For one group, accepted cells + opened leaves + self must account
    for every particle exactly once (no double counting, no gaps)."""
    ps = small_plummer
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    compute_opening_radii(tree, 0.5, "bonsai")
    spos = ps.pos[tree.order]
    gmin, gmax = group_aabbs(tree, spos)
    pc_g, pc_c, pp_g, pp_c, _ = walk_interaction_lists(tree, gmin, gmax)
    g = 0
    cells = np.concatenate([pc_c[pc_g == g], pp_c[pp_g == g]])
    covered = tree.body_count[cells].sum()
    assert covered == tree.n_bodies


def test_bodies_counted_once_per_group(small_plummer):
    """Interaction ranges of one group's cells must be disjoint."""
    ps = small_plummer
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    compute_opening_radii(tree, 0.5, "bonsai")
    spos = ps.pos[tree.order]
    gmin, gmax = group_aabbs(tree, spos)
    pc_g, pc_c, pp_g, pp_c, _ = walk_interaction_lists(tree, gmin, gmax)
    for g in (0, 1):
        cells = np.concatenate([pc_c[pc_g == g], pp_c[pp_g == g]])
        ivs = sorted((int(tree.body_first[c]),
                      int(tree.body_first[c] + tree.body_count[c]))
                     for c in cells)
        for (a1, b1), (a2, b2) in zip(ivs[:-1], ivs[1:]):
            assert b1 <= a2


def test_requires_groups(small_plummer):
    ps = small_plummer
    tree = build_octree(ps.pos)
    compute_moments(tree, ps.pos, ps.mass)
    with pytest.raises(ValueError):
        tree_forces(tree, ps.pos, ps.mass, theta=0.5)


def test_interaction_counts_grow_with_n():
    """p-c per particle must increase with N (the log-growth the perf
    model depends on)."""
    from repro.ics import plummer_model
    pcs = []
    for n in (1000, 4000, 16000):
        ps = plummer_model(n, seed=25)
        res, _ = _forces(ps, theta=0.5)
        pcs.append(res.counts.n_pc / n)
    assert pcs[0] < pcs[1] < pcs[2]
