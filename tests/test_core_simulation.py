"""Tests for the serial Simulation driver."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.core.step import TABLE2_PHASES
from repro.ics import plummer_model


@pytest.fixture()
def sim():
    return Simulation(plummer_model(1500, seed=58),
                      SimulationConfig(theta=0.5, softening=0.02, dt=0.01))


def test_step_advances_time(sim):
    sim.step()
    assert sim.time == pytest.approx(0.01)
    assert sim.step_count == 1
    sim.evolve(3)
    assert sim.step_count == 4


def test_energy_conserved_over_run(sim):
    e0 = sim.diagnostics().total
    sim.evolve(30)
    e1 = sim.diagnostics().total
    assert abs((e1 - e0) / e0) < 1e-3


def test_momentum_conserved(sim):
    sim.evolve(10)
    assert np.allclose(sim.particles.momentum(), 0.0, atol=1e-6)


def test_breakdown_recorded(sim):
    bd = sim.step()
    assert bd.total > 0
    assert bd.gravity_local > 0
    assert bd.tree_construction > 0
    assert bd.counts.n_pp > 0
    assert bd.n_particles == 1500
    assert len(sim.history) == 1


def test_breakdown_dict_has_table2_phases(sim):
    bd = sim.step()
    d = bd.as_dict()
    assert tuple(d.keys()) == TABLE2_PHASES


def test_performance_rates(sim):
    bd = sim.step()
    assert bd.gpu_tflops() > 0
    assert bd.application_tflops() <= bd.gpu_tflops()


def test_config_defaults_are_paper_values():
    cfg = SimulationConfig()
    assert cfg.theta == 0.4
    assert cfg.nleaf == 16
    assert cfg.curve == "hilbert"
    assert cfg.mac == "bonsai"
    assert cfg.quadrupole is True


def test_config_validation():
    with pytest.raises(ValueError):
        SimulationConfig(theta=-1)
    with pytest.raises(ValueError):
        SimulationConfig(dt=0)
    with pytest.raises(ValueError):
        SimulationConfig(softening=-0.1)
    with pytest.raises(ValueError):
        SimulationConfig(mac="fmm")
    with pytest.raises(ValueError):
        SimulationConfig(curve="lebesgue")


def test_callback(sim):
    times = []
    sim.evolve(3, callback=lambda s: times.append(s.time))
    assert len(times) == 3
    assert times == sorted(times)


def test_forces_available_after_step(sim):
    sim.step()
    assert sim.acceleration.shape == (1500, 3)
    assert sim.potential.shape == (1500,)
    assert np.all(sim.potential < 0)


def test_bound_cluster_stays_bound(sim):
    sim.evolve(20)
    r = np.linalg.norm(sim.particles.pos, axis=1)
    assert np.median(r) < 5.0


def test_class_docstring_example_runs():
    """The usage example in Simulation's docstring must stay true."""
    import doctest
    from repro.core import simulation as mod
    results = doctest.testmod(mod, verbose=False)
    assert results.failed == 0
    assert results.attempted >= 1


def test_direct_force_method_breakdown(small_plummer):
    sim = Simulation(small_plummer.copy(),
                     SimulationConfig(force_method="direct", softening=0.02,
                                      dt=0.01))
    bd = sim.step()
    assert bd.counts.n_pc == 0
    assert bd.counts.n_pp > 0
    assert bd.tree_construction == 0.0
    assert bd.gravity_local > 0.0
