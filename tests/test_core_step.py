"""Tests for the StepBreakdown record."""

import pytest

from repro.core.step import StepBreakdown, TABLE2_PHASES
from repro.gravity.flops import InteractionCounts


def test_total_sums_phases():
    bd = StepBreakdown(sorting=0.1, domain_update=0.2, tree_construction=0.1,
                       tree_properties=0.03, gravity_local=1.45,
                       gravity_let=1.78, non_hidden_comm=0.09, other=0.27)
    assert bd.total == pytest.approx(4.02)


def test_as_dict_order():
    bd = StepBreakdown()
    assert tuple(bd.as_dict()) == TABLE2_PHASES


def test_gpu_vs_application_rates():
    bd = StepBreakdown(gravity_local=1.0, gravity_let=1.0, other=2.0,
                       counts=InteractionCounts(n_pp=10 ** 9, n_pc=10 ** 9))
    assert bd.gpu_tflops() == pytest.approx(bd.counts.flops / 2.0 / 1e12)
    assert bd.application_tflops() == pytest.approx(bd.counts.flops / 4.0 / 1e12)
    assert bd.application_tflops() < bd.gpu_tflops()


def test_mean_of_breakdowns():
    a = StepBreakdown(sorting=1.0, counts=InteractionCounts(n_pp=100, n_pc=10),
                      n_particles=5)
    b = StepBreakdown(sorting=3.0, counts=InteractionCounts(n_pp=200, n_pc=30),
                      n_particles=5)
    m = StepBreakdown.mean([a, b])
    assert m.sorting == pytest.approx(2.0)
    assert m.counts.n_pp == 150
    assert m.counts.n_pc == 20
    assert m.n_particles == 5


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        StepBreakdown.mean([])


def test_zero_time_rates_are_zero():
    bd = StepBreakdown(counts=InteractionCounts(n_pp=100))
    assert bd.gpu_tflops() == 0.0
    assert bd.application_tflops() == 0.0
