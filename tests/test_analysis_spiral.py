"""Tests for the spiral-structure diagnostics."""

import numpy as np
import pytest

from repro.analysis.spiral import (
    logspiral_transform,
    make_log_spiral,
    mode_spectrum,
    pitch_angle,
)


def test_mode_spectrum_normalised():
    rng = np.random.default_rng(86)
    pos = rng.normal(size=(5000, 3)) * [4, 4, 0.2]
    spec = mode_spectrum(pos, np.ones(5000))
    assert spec[0] == pytest.approx(1.0)
    assert np.all(spec[1:] < 0.1)  # axisymmetric noise floor


def test_two_armed_spiral_peaks_at_m2():
    # A wide annulus averages a tightly wound spiral's phase away, so
    # measure a slowly wound (large pitch) spiral in a narrow annulus.
    pos = make_log_spiral(20000, pitch_deg=45.0, m=2, seed=87)
    spec = mode_spectrum(pos, np.ones(len(pos)), r_min=4.0, r_max=6.0)
    assert spec[2] > 0.3
    assert spec[2] > 2 * spec[1]
    assert spec[2] > 2 * spec[3]


def test_three_armed_spiral_peaks_at_m3():
    pos = make_log_spiral(20000, pitch_deg=25.0, m=3, seed=88)
    spec = mode_spectrum(pos, np.ones(len(pos)))
    assert spec[3] > spec[2]
    assert spec[3] > spec[4]


@pytest.mark.parametrize("pitch", [10.0, 20.0, 35.0])
def test_pitch_angle_recovered(pitch):
    pos = make_log_spiral(30000, pitch_deg=pitch, m=2, spread=0.05, seed=89)
    measured = pitch_angle(pos, np.ones(len(pos)), m=2)
    assert measured == pytest.approx(pitch, rel=0.25)


def test_bar_has_large_pitch_angle():
    """A bar (straight m=2 feature) must measure near 90 degrees."""
    rng = np.random.default_rng(90)
    n = 20000
    x = rng.normal(scale=4.0, size=n)
    y = rng.normal(scale=0.5, size=n)
    pos = np.stack([x, y, rng.normal(scale=0.1, size=n)], axis=1)
    measured = pitch_angle(pos, np.ones(n), m=2, r_min=1.0, r_max=8.0)
    assert measured > 45.0


def test_logspiral_transform_empty_annulus():
    pos = np.zeros((10, 3))
    p, amp = logspiral_transform(pos, np.ones(10), r_min=100, r_max=200)
    assert np.all(amp == 0.0)


def test_transform_peak_sign_encodes_winding():
    """Mirroring a spiral (trailing <-> leading) flips the peak's p sign."""
    pos = make_log_spiral(20000, pitch_deg=20.0, m=2, spread=0.05, seed=91)
    mirrored = pos.copy()
    mirrored[:, 1] *= -1.0
    p, amp = logspiral_transform(pos, np.ones(len(pos)))
    p2, amp2 = logspiral_transform(mirrored, np.ones(len(pos)))
    assert np.sign(p[np.argmax(amp)]) == -np.sign(p2[np.argmax(amp2)])
