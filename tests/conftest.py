"""Shared fixtures for the test suite."""

import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the suite without installation.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def rng():
    """A deterministic random generator shared across a session."""
    return np.random.default_rng(20140416)


@pytest.fixture(scope="session")
def small_plummer():
    """A 2000-particle Plummer sphere (session-scoped; treat as read-only)."""
    from repro.ics import plummer_model
    return plummer_model(2000, seed=7)


@pytest.fixture(scope="session")
def small_milky_way():
    """A 12000-particle Milky Way model (session-scoped; read-only)."""
    from repro.ics import milky_way_model
    return milky_way_model(12_000, seed=9)


@pytest.fixture(scope="session")
def plummer_tree(small_plummer):
    """Octree with moments and groups over the Plummer fixture."""
    from repro.octree import build_octree, compute_moments, make_groups
    ps = small_plummer
    tree = build_octree(ps.pos, nleaf=16)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 64)
    return tree


@pytest.fixture(scope="session")
def plummer_direct(small_plummer):
    """Direct-summation reference forces for the Plummer fixture (eps=0.02)."""
    from repro.gravity import direct_forces
    ps = small_plummer
    return direct_forces(ps.pos, ps.mass, eps=0.02)
