"""Tests for the runtime force-accuracy validator and tree stats."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.core.validation import ForceAccuracy, validate_forces
from repro.ics import plummer_model
from repro.octree import build_octree
from repro.octree.stats import tree_stats


def test_validator_accepts_accurate_tree(small_plummer):
    sim = Simulation(small_plummer.copy(),
                     SimulationConfig(theta=0.4, softening=0.02, dt=0.01))
    sim.compute_forces()
    acc = validate_forces(sim.particles, sim.acceleration, sim.potential,
                          eps=0.02, sample_size=128)
    assert acc.sample_size == 128
    assert acc.median < 1e-3
    assert acc.median <= acc.p90 <= acc.p99 <= acc.maximum
    assert acc.acceptable(0.4)
    assert acc.potential_median < 1e-3


def test_validator_rejects_wrong_forces(small_plummer):
    sim = Simulation(small_plummer.copy(),
                     SimulationConfig(theta=0.4, softening=0.02, dt=0.01))
    sim.compute_forces()
    wrong = sim.acceleration * 2.0
    acc = validate_forces(sim.particles, wrong, sim.potential, eps=0.02)
    assert acc.median > 0.5
    assert not acc.acceptable(0.4)


def test_validator_error_grows_with_theta(small_plummer):
    meds = []
    for theta in (0.3, 0.9):
        sim = Simulation(small_plummer.copy(),
                         SimulationConfig(theta=theta, softening=0.02, dt=0.01))
        sim.compute_forces()
        meds.append(validate_forces(sim.particles, sim.acceleration,
                                    sim.potential, eps=0.02).median)
    assert meds[0] < meds[1]


def test_sample_larger_than_n():
    ps = plummer_model(50, seed=94)
    sim = Simulation(ps, SimulationConfig(theta=0.5, softening=0.05, dt=0.01))
    sim.compute_forces()
    acc = validate_forces(sim.particles, sim.acceleration, sim.potential,
                          eps=0.05, sample_size=1000)
    assert acc.sample_size == 50


def test_tree_stats(small_plummer):
    tree = build_octree(small_plummer.pos, nleaf=16)
    s = tree_stats(tree)
    assert s.n_bodies == small_plummer.n
    assert s.n_leaves <= s.n_cells
    assert 1 <= s.mean_leaf_occupancy <= 16
    assert s.max_leaf_occupancy <= 16
    assert s.cells_per_level.sum() == s.n_cells
    assert 1.0 <= s.branching_factor <= 8.0
    assert s.memory_bytes > 0
    assert len(s.as_lines()) == 5
