"""Unit tests for the measured-cost CostModel (repro.parallel.feedback).

The model's data path is the world's metrics registry: whatever booked
``force_phase_seconds_total`` / ``force_flops_total`` is the source of
truth, so these tests poke the counters directly and check the EWMA,
the source selection, the collective imbalance/trigger logic and the
driver-facing validation -- no force computation required.
"""

import math

import numpy as np
import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock
from repro.parallel import COST_SOURCES, CostModel, LB_MODES, imbalance_ratio
from repro.parallel.gravity_parallel import FORCE_PHASES
from repro.simmpi import SimComm, SimWorld, spmd_run


def _solo_model(**kw):
    world = SimWorld(1)
    comm = SimComm(world, 0)
    return CostModel(comm, **kw)


def _book_seconds(model, per_phase):
    for p in FORCE_PHASES:
        model._phase_seconds.inc(per_phase, rank=model.comm.rank, phase=p)


# -- construction and validation ----------------------------------------

def test_mode_and_source_tuples():
    assert "measured" in LB_MODES
    assert set(COST_SOURCES) == {"auto", "seconds", "counts"}


@pytest.mark.parametrize("kw", [dict(source="wallclock"),
                                dict(alpha=0.0), dict(alpha=1.5),
                                dict(trigger_ratio=0.9)])
def test_invalid_parameters_raise(kw):
    with pytest.raises(ValueError):
        _solo_model(**kw)


def test_invalid_load_balance_mode_raises():
    from repro.core.parallel_simulation import ParallelSimulation
    with pytest.raises(ValueError, match="load_balance"):
        ParallelSimulation(SimComm(SimWorld(1), 0), plummer_model(16, seed=0),
                           SimulationConfig(), load_balance="lucky")


# -- imbalance_ratio helper ---------------------------------------------

def test_imbalance_ratio():
    assert imbalance_ratio([1.0, 1.0, 1.0, 1.0]) == 1.0
    assert imbalance_ratio([2.0, 1.0, 1.0]) == pytest.approx(1.5)
    assert imbalance_ratio([]) == 1.0
    assert imbalance_ratio([0.0, 0.0]) == 1.0   # nothing to balance


# -- EWMA observation ----------------------------------------------------

def test_cold_model_has_no_weights():
    m = _solo_model(source="counts")
    assert not m.warm
    assert m.weights(100) is None


def test_observe_counts_ewma():
    m = _solo_model(source="counts", alpha=0.5)
    m._flops.inc(1000.0, rank=0)
    assert m.observe(10) == pytest.approx(1000.0)     # first sample seeds
    assert m.smoothed_per_particle == pytest.approx(100.0)
    m._flops.inc(2000.0, rank=0)                      # delta = 2000
    assert m.observe(10) == pytest.approx(0.5 * 2000 + 0.5 * 1000)
    assert m.smoothed_per_particle == pytest.approx(0.5 * 200 + 0.5 * 100)
    w = m.weights(4)
    assert w.shape == (4,)
    assert np.all(w == m.smoothed_per_particle)


def test_observe_seconds_sums_configured_phases():
    m = _solo_model(source="seconds", alpha=1.0)
    _book_seconds(m, 0.25)
    assert m.observe(5) == pytest.approx(0.25 * len(FORCE_PHASES))


def test_observe_reads_deltas_not_totals():
    m = _solo_model(source="counts", alpha=1.0)
    m._flops.inc(500.0, rank=0)
    m.observe(5)
    m.observe(5)            # no new flops booked: sample is 0, not 500
    assert m.smoothed == 0.0
    assert m.weights(5) is None     # zero cost => fall back to flop est.


def test_per_particle_smoothing_survives_domain_shrink():
    """The weight is the EWMA of the intrinsic per-particle cost: a rank
    whose domain just shrank must not look more expensive per particle."""
    m = _solo_model(source="counts", alpha=0.5)
    m._flops.inc(1000.0, rank=0)
    m.observe(100)          # 10 / particle
    m._flops.inc(100.0, rank=0)
    m.observe(10)           # still 10 / particle, despite 10x fewer
    assert m.smoothed_per_particle == pytest.approx(10.0)


# -- source selection ----------------------------------------------------

def test_auto_source_follows_tracer():
    world = SimWorld(1)
    comm = SimComm(world, 0)
    m = CostModel(comm, source="auto")
    assert not m._use_seconds()          # no tracer attached
    world.attach_tracer(Tracer(clock=VirtualClock()))
    assert m._use_seconds()
    assert CostModel(comm, source="counts")._use_seconds() is False
    assert CostModel(SimComm(SimWorld(1), 0),
                     source="seconds")._use_seconds() is True


# -- collective imbalance / trigger --------------------------------------

def test_imbalance_is_collective_and_cold_is_inf():
    def prog(comm):
        m = CostModel(comm, source="counts", alpha=1.0, trigger_ratio=1.1)
        cold = m.imbalance()                    # nobody observed yet
        m._flops.inc(3000.0 if comm.rank == 0 else 1000.0, rank=comm.rank)
        m.observe(10)
        warm = m.imbalance()
        return cold, warm, m.should_rebalance(warm)

    results = spmd_run(2, prog)
    for cold, warm, fire in results:
        assert math.isinf(cold)
        assert warm == pytest.approx(3000.0 / 2000.0)   # max/mean
        assert fire                                     # 1.5 > 1.1
    # every rank computed the identical ratio
    assert len({r[1] for r in results}) == 1


def test_rebalance_counter_books_once_not_per_rank():
    def prog(comm):
        m = CostModel(comm, source="counts")
        m.record_rebalance()
        return comm.world.metrics.counter("lb_rebalance_total", "").value()

    assert max(spmd_run(4, prog)) == 1.0


# -- driver integration smoke -------------------------------------------

def test_measured_driver_smoke():
    sims = run_parallel_simulation(2, plummer_model(120, seed=2),
                                   SimulationConfig(dt=0.01), n_steps=2,
                                   load_balance="measured",
                                   lb_source="counts")
    reg = sims[0].comm.world.metrics
    assert reg.counter("lb_rebalance_total", "").value() >= 1
    for rank in range(2):
        assert reg.counter("force_flops_total", "",
                           labelnames=("rank",)).value(rank=rank) > 0
    for s in sims:
        # prime + one redistribute per step
        assert len(s.boundary_history) == 3
        assert s.boundary_history == sims[0].boundary_history
