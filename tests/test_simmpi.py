"""Tests for the SimMPI runtime and communicator."""

import numpy as np
import pytest

from repro.simmpi import SimWorld, spmd_run
from repro.simmpi.traffic import payload_bytes


def test_allgather():
    def prog(comm):
        return comm.allgather(comm.rank ** 2)
    for res in spmd_run(4, prog):
        assert res == [0, 1, 4, 9]


def test_bcast():
    def prog(comm):
        return comm.bcast("hello" if comm.rank == 2 else None, root=2)
    assert spmd_run(3, prog) == ["hello"] * 3


def test_gather_root_only():
    def prog(comm):
        return comm.gather(comm.rank, root=1)
    res = spmd_run(3, prog)
    assert res[0] is None and res[2] is None
    assert res[1] == [0, 1, 2]


def test_allreduce_sum_min_max():
    def prog(comm):
        return (comm.allreduce(comm.rank, "sum"),
                comm.allreduce(np.array([comm.rank]), "min")[0],
                comm.allreduce(np.array([comm.rank]), "max")[0])
    for s, lo, hi in spmd_run(4, prog):
        assert (s, lo, hi) == (6, 0, 3)


def test_allreduce_callable():
    def prog(comm):
        return comm.allreduce(comm.rank + 1, op=lambda xs: max(xs) * 100)
    assert spmd_run(3, prog) == [300] * 3


def test_allreduce_unknown_op():
    def prog(comm):
        comm.allreduce(1, "median")
    with pytest.raises(RuntimeError, match="unknown op"):
        spmd_run(2, prog)


def test_send_recv_ring():
    def prog(comm):
        right = (comm.rank + 1) % comm.size
        left = (comm.rank - 1) % comm.size
        comm.send(np.arange(comm.rank + 1), right, tag=3)
        return len(comm.recv(left, tag=3))
    assert spmd_run(5, prog) == [5, 1, 2, 3, 4]


def test_tags_keep_messages_separate():
    def prog(comm):
        if comm.rank == 0:
            comm.send("a", 1, tag=1)
            comm.send("b", 1, tag=2)
            return None
        if comm.rank == 1:
            # receive in reverse tag order
            b = comm.recv(0, tag=2)
            a = comm.recv(0, tag=1)
            return a + b
        return None
    assert spmd_run(2, prog)[1] == "ab"


def test_alltoall():
    def prog(comm):
        out = [f"{comm.rank}->{d}" for d in range(comm.size)]
        inbox = comm.alltoall(out)
        return inbox
    res = spmd_run(3, prog)
    assert res[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_wrong_length():
    def prog(comm):
        comm.alltoall([1])
    with pytest.raises(RuntimeError):
        spmd_run(2, prog)


def test_numpy_arrays_pass_through():
    def prog(comm):
        arr = comm.bcast(np.eye(3) if comm.rank == 0 else None)
        return float(arr.trace())
    assert spmd_run(2, prog) == [3.0, 3.0]


def test_exception_propagates_with_rank():
    def prog(comm):
        if comm.rank == 1:
            raise ValueError("boom")
        comm.barrier()
    with pytest.raises(RuntimeError, match="rank 1"):
        spmd_run(3, prog)


def test_traffic_accounting_p2p():
    world = SimWorld(2)

    def prog(comm):
        if comm.rank == 0:
            comm.send(np.zeros(100), 1, tag=0)
        else:
            comm.recv(0, tag=0)

    spmd_run(2, prog, world=world)
    assert world.traffic.p2p_bytes[(0, 1)] == 800
    assert world.traffic.total_bytes == 800


def test_traffic_phases():
    world = SimWorld(2)

    def prog(comm):
        comm.set_phase("setup")
        comm.allgather(np.zeros(10))
        comm.set_phase("work")
        if comm.rank == 0:
            comm.send(b"xy", 1)
        else:
            comm.recv(0)

    spmd_run(2, prog, world=world)
    s = world.traffic.summary()
    assert s["setup"]["collectives"] == 2
    assert s["work"]["bytes"] == 2


def test_payload_bytes():
    assert payload_bytes(np.zeros(10)) == 80
    assert payload_bytes(b"abc") == 3
    assert payload_bytes([np.zeros(2), np.zeros(3)]) == 40
    assert payload_bytes({"k": 1}) > 0


def test_collective_ordering_across_many_rounds():
    """Generation counters keep repeated collectives from colliding."""
    def prog(comm):
        acc = 0
        for k in range(20):
            acc += comm.allreduce(comm.rank * k)
        return acc
    res = spmd_run(3, prog)
    expected = sum((0 + 1 + 2) * k for k in range(20))
    assert res == [expected] * 3


def test_single_rank_world():
    def prog(comm):
        assert comm.allgather(7) == [7]
        assert comm.allreduce(5) == 5
        return comm.size
    assert spmd_run(1, prog) == [1]


def test_invalid_dest():
    def prog(comm):
        comm.send(1, 5)
    with pytest.raises(RuntimeError):
        spmd_run(2, prog)


def test_world_size_validation():
    with pytest.raises(ValueError):
        SimWorld(0)
