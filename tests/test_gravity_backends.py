"""Pluggable compute backends: registry, equivalence and skip paths.

The invariants this suite pins down:

- the registry resolves names, reports availability without importing
  heavy runtimes, and fails with actionable errors;
- ``backend="numpy"`` (the default) is byte-for-byte the pre-registry
  behaviour: identical forces, counts and span attributes;
- every *available* registered backend -- plus the numba backend's
  pure-Python fallback, which runs everywhere -- agrees with the
  numpy-float64 oracle inside the differential theta^2 envelope on
  random problems, with bitwise-identical interaction counts (counts
  are a walk property no backend may change);
- backends whose package is absent skip, never fail, and are never
  imported at module load.

The real numba/cupy runtimes are exercised by the same tests when
installed (CI's ``backend-matrix`` job); this container validates the
fused pass algorithm through the fallback.
"""

import json
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SimulationConfig
from repro.core.simulation import Simulation
from repro.gravity import tree_forces
from repro.gravity.backends import (
    BackendUnavailable,
    ComputeBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    registered_backends,
    unregister_backend,
)
from repro.gravity.backends.numba_backend import JitWorkspace
from repro.gravity.kernels import (
    pc_interactions,
    point_forces_on_targets,
    pp_interactions,
)
from repro.gravity.treewalk import evaluate_pc_pairs, evaluate_pp_pairs
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock, chrome_trace_json
from repro.octree import build_octree, compute_moments, make_groups
from repro.testing.differential import max_rel_difference

THETA = 0.5
ENVELOPE = 0.3 * THETA ** 2

#: The fallback runs the fused pass source everywhere; real optional
#: backends join automatically where their runtime is installed.
FALLBACK = NumbaBackend(python_fallback=True)


def _tree_result(n, seed, backend, quadrupole=True, eps=0.02,
                 precision="float64"):
    ps = plummer_model(n, seed=seed)
    tree = build_octree(ps.pos, nleaf=8)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 16)
    return tree_forces(tree, ps.pos, ps.mass, theta=THETA, eps=eps,
                       quadrupole=quadrupole, backend=backend,
                       precision=precision)


def _spans(tr, name):
    doc = json.loads(chrome_trace_json(tr))
    return [e for e in doc["traceEvents"] if e.get("name") == name]


def _rel(a, b):
    """``max_rel_difference`` for either (n, 3) or 1-D (phi) arrays."""
    a, b = np.atleast_2d(np.asarray(a).T).T, np.atleast_2d(np.asarray(b).T).T
    return max_rel_difference(a, b)


def _nondefault_backends():
    """Every backend the host can actually run, plus the fallback."""
    extras = [get_backend(name) for name in available_backends()
              if name != "numpy"]
    return [FALLBACK, *extras]


# -- registry ---------------------------------------------------------------

def test_builtin_backends_registered():
    assert registered_backends() == ("numpy", "numba", "cupy")
    assert "numpy" in available_backends()


def test_get_backend_passthrough_and_errors():
    be = get_backend("numpy")
    assert get_backend(be) is be
    with pytest.raises(ValueError, match="unknown compute backend"):
        get_backend("does-not-exist")


def test_unavailable_backend_raises_with_reason():
    for name in ("numba", "cupy"):
        backend = get_backend(name) if name in available_backends() else None
        if backend is not None:
            pytest.skip(f"{name} is installed here")
        with pytest.raises(BackendUnavailable, match=name):
            get_backend(name)


def test_register_and_unregister_custom_backend():
    custom = NumpyBackend(name="custom-ref")
    register_backend(custom)
    try:
        assert "custom-ref" in registered_backends()
        assert get_backend("custom-ref") is custom
    finally:
        unregister_backend("custom-ref")
    assert "custom-ref" not in registered_backends()
    with pytest.raises(ValueError):
        register_backend(ComputeBackend())  # name "?" is not a valid key


def test_no_heavy_import_at_module_load():
    # The registry (and this whole suite's imports) must not pull in
    # numba/cupy; availability probing is find_spec-only.
    for mod in ("numba", "cupy"):
        if mod not in available_backends():
            assert mod not in sys.modules


def test_config_validates_backend():
    assert SimulationConfig().backend == "numpy"
    cfg = SimulationConfig(backend="numba")   # registered: config is valid
    assert cfg.backend == "numba"             # (availability checked later)
    with pytest.raises(ValueError, match="unknown backend"):
        SimulationConfig(backend="fortran")
    with pytest.raises(ValueError, match="scatter"):
        SimulationConfig(backend="numba", scatter="bincount")


def test_driver_fails_fast_when_backend_unavailable():
    missing = [n for n in ("numba", "cupy") if n not in available_backends()]
    if not missing:
        pytest.skip("all optional backends installed here")
    ps = plummer_model(32, seed=0)
    with pytest.raises(BackendUnavailable):
        Simulation(ps, SimulationConfig(backend=missing[0]))


# -- default unchanged ------------------------------------------------------

def test_default_backend_bitwise_unchanged():
    ref = _tree_result(256, 1, backend="numpy")
    default = _tree_result(256, 1, backend="numpy")
    assert ref.acc.tobytes() == default.acc.tobytes()
    assert ref.phi.tobytes() == default.phi.tobytes()


def test_default_serial_spans_carry_no_backend_attr():
    ps = plummer_model(128, seed=2)
    tr = Tracer(clock=VirtualClock())
    sim = Simulation(ps, SimulationConfig(theta=THETA, softening=0.02,
                                          dt=0.01), trace=tr)
    sim.compute_forces()
    spans = _spans(tr, "gravity_local")
    assert spans and all("backend" not in s.get("args", {}) for s in spans)


# -- oracle agreement (hypothesis over random problems) ---------------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16), n=st.integers(2, 96),
       quadrupole=st.booleans())
def test_backends_agree_with_numpy_float64(seed, n, quadrupole):
    ref = _tree_result(n, seed, backend="numpy", quadrupole=quadrupole)
    for backend in _nondefault_backends():
        res = _tree_result(n, seed, backend=backend, quadrupole=quadrupole)
        # Counts are a walk property: bitwise, every backend.
        assert (res.counts.n_pp, res.counts.n_pc) \
            == (ref.counts.n_pp, ref.counts.n_pc)
        assert _rel(res.acc, ref.acc) < ENVELOPE
        assert _rel(res.phi, ref.phi) < ENVELOPE


def test_float32_variant_bounded_by_envelope():
    ref = _tree_result(256, 3, backend="numpy")
    for backend in _nondefault_backends():
        res = _tree_result(256, 3, backend=backend, precision="float32")
        assert (res.counts.n_pp, res.counts.n_pc) \
            == (ref.counts.n_pp, ref.counts.n_pc)
        assert _rel(res.acc, ref.acc) < ENVELOPE


def test_single_particle_and_eps_zero_edges():
    # One particle: every pair list is empty or pure self-pairs.
    for backend in ("numpy", *[b.name for b in _nondefault_backends()
                               if b.name in available_backends()]):
        res = _tree_result(2, 5, backend=backend, eps=0.0)
        assert np.isfinite(res.acc).all() and np.isfinite(res.phi).all()
    res = _tree_result(2, 5, backend=FALLBACK, eps=0.0)
    ref = _tree_result(2, 5, backend="numpy", eps=0.0)
    np.testing.assert_allclose(res.acc, ref.acc, rtol=1e-12, atol=1e-13)


# -- pair-batch kernels (empty / single-pair edges included) ----------------

@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2 ** 16), n=st.sampled_from([0, 1, 7, 128]),
       monopole=st.booleans())
def test_pair_batch_kernels_match_reference(seed, n, monopole):
    rng = np.random.default_rng(seed)
    dx, dy, dz = (rng.standard_normal(n) + 0.1 for _ in range(3))
    m = rng.uniform(0.1, 2.0, n)
    quad = None if monopole else rng.standard_normal((n, 6)) * 0.01
    ref = pc_interactions(dx, dy, dz, m, quad, 1e-4)
    scale = max(float(np.abs(np.concatenate(ref)).max()) if n else 0.0, 1e-30)
    for backend in _nondefault_backends():
        got = backend.pc_kernel(dx, dy, dz, m, quad, 1e-4)
        for g, r in zip(got, ref):
            np.testing.assert_allclose(g, r, rtol=1e-10, atol=1e-10 * scale)
    pref = pp_interactions(dx, dy, dz, m, 1e-4)
    for backend in _nondefault_backends():
        got = backend.pp_kernel(dx, dy, dz, m, 1e-4)
        for g, r in zip(got, pref):
            np.testing.assert_allclose(g, r, rtol=1e-10, atol=1e-10 * scale)


def test_empty_pair_lists_are_noops():
    empty = np.empty(0, dtype=np.int64)
    acc = np.zeros((4, 3))
    phi = np.zeros(4)
    ps = plummer_model(4, seed=9)
    tree = build_octree(ps.pos, nleaf=8)
    compute_moments(tree, ps.pos, ps.mass)
    make_groups(tree, 16)
    from repro.gravity.flops import InteractionCounts
    for backend in ("numpy", FALLBACK):
        counts = InteractionCounts()
        evaluate_pc_pairs(acc, phi, ps.pos, tree, empty, empty,
                          tree.group_first, tree.group_count, 1e-4, True,
                          counts, backend=backend)
        evaluate_pp_pairs(acc, phi, ps.pos, ps.pos, ps.mass, empty, empty,
                          tree.group_first, tree.group_count,
                          tree.body_first, tree.body_count, 1e-4,
                          counts, exclude_self=True, backend=backend)
        assert counts.n_pp == counts.n_pc == 0
    assert not acc.any() and not phi.any()


# -- dense helper -----------------------------------------------------------

def test_point_forces_routes_through_registry():
    ps = plummer_model(96, seed=4)
    t, s, m = ps.pos[:32], ps.pos[32:], ps.mass[32:]
    ref = point_forces_on_targets(t, s, m, 1e-4)
    via = point_forces_on_targets(t, s, m, 1e-4, backend="numpy")
    assert ref[0].tobytes() == via[0].tobytes()
    for backend in _nondefault_backends():
        acc, phi = backend.point_forces(t, s, m, 1e-4)
        np.testing.assert_allclose(acc, ref[0], rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(phi, ref[1], rtol=1e-12, atol=1e-13)


def test_point_forces_eps_zero_warning_clean():
    # Coincident target/source at eps = 0: inf is fine, warnings are not.
    pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
    mass = np.ones(2)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        acc, phi = point_forces_on_targets(pos, pos, mass, 0.0)
    assert np.isinf(phi).all()


# -- workspaces and warm-up -------------------------------------------------

def test_jit_workspace_contract():
    ws = JitWorkspace(1024, "float32")
    assert ws.dtype == np.float32 and ws.nbytes == 0
    assert ws.ensure(4096) is ws and ws.chunk == 4096
    with pytest.raises(ValueError):
        JitWorkspace(8, "float16")
    assert isinstance(get_backend("numpy").make_workspace(8).nbytes, int)


def test_fallback_warmup_idempotent():
    FALLBACK.warmup("float64")
    FALLBACK.warmup("float32")


# -- driver + telemetry threading (via a registered mirror backend) ---------

@pytest.fixture
def mirror_backend():
    """The numpy reference registered under a non-default name.

    Exercises every driver/telemetry code path a non-default backend
    takes (resolution, workspace creation, span stamping, perf rows)
    with bitwise-reference numerics and no optional dependency.
    """
    backend = NumpyBackend(name="mirror")
    register_backend(backend)
    yield backend
    unregister_backend("mirror")


def test_serial_driver_threads_backend(mirror_backend):
    ps = plummer_model(128, seed=6)
    kw = dict(theta=THETA, softening=0.02, dt=0.01)
    tr = Tracer(clock=VirtualClock())
    sim = Simulation(ps, SimulationConfig(backend="mirror", **kw), trace=tr)
    acc, phi = sim.compute_forces()
    ref = Simulation(ps, SimulationConfig(**kw)).compute_forces()
    assert acc.tobytes() == ref[0].tobytes()
    assert phi.tobytes() == ref[1].tobytes()
    spans = _spans(tr, "gravity_local")
    assert spans and all(s["args"].get("backend") == "mirror" for s in spans)


@pytest.mark.parametrize("transport", ["threads", "process"])
def test_parallel_driver_threads_backend(mirror_backend, transport):
    from tests.test_forest_walk import _cfg, _forces
    particles = plummer_model(256, seed=8)
    ref = _forces(particles, _cfg(transport=transport), 2)
    got = _forces(particles, _cfg(transport=transport, backend="mirror"), 2)
    assert got[2] == ref[2]                      # counts byte-identical
    assert got[0].tobytes() == ref[0].tobytes()  # bitwise reference numerics
    assert got[1].tobytes() == ref[1].tobytes()


def test_perf_report_gains_backend_rows(mirror_backend):
    from repro.obs.perf import perf_from_trace, perf_lines
    ps = plummer_model(128, seed=10)
    kw = dict(theta=THETA, softening=0.02, dt=0.01)
    tr = Tracer(clock=VirtualClock())
    sim = Simulation(ps, SimulationConfig(backend="mirror", **kw), trace=tr)
    sim.step()
    perf = perf_from_trace(json.loads(chrome_trace_json(tr)))
    assert list(perf["backends"]) == ["mirror"]
    row = perf["backends"]["mirror"]
    assert row["n_pp"] > 0 and row["flops"] > 0
    assert any("backend mirror" in line for line in perf_lines(perf))
    # Default runs attribute everything to numpy (absence == default).
    tr2 = Tracer(clock=VirtualClock())
    Simulation(ps, SimulationConfig(**kw), trace=tr2).step()
    perf2 = perf_from_trace(json.loads(chrome_trace_json(tr2)))
    assert list(perf2["backends"]) == ["numpy"]
    # The perf summary stays JSON-serialisable (report embedding).
    json.dumps(perf)


# -- optional runtimes: skip-not-fail locally, exercised in CI --------------

def _require(name):
    try:
        return get_backend(name)
    except BackendUnavailable as exc:
        pytest.skip(str(exc))


@pytest.mark.parametrize("name", ["numba", "cupy"])
def test_optional_backend_matches_oracle_when_installed(name):
    backend = _require(name)
    backend.warmup()
    ref = _tree_result(512, 21, backend="numpy")
    res = _tree_result(512, 21, backend=backend)
    assert (res.counts.n_pp, res.counts.n_pc) \
        == (ref.counts.n_pp, ref.counts.n_pc)
    assert _rel(res.acc, ref.acc) < ENVELOPE
    assert _rel(res.phi, ref.phi) < ENVELOPE


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
@pytest.mark.parametrize("transport", ["threads", "process"])
def test_numba_cross_transport_matrix(n_ranks, transport):
    """The PR-5 gate, rerun under the JIT backend: counts bitwise at
    1/2/4/8 ranks on both transports, forces inside the envelope."""
    _require("numba")
    from tests.test_forest_walk import _cfg, _forces
    particles = plummer_model(512, seed=22)
    ref = _forces(particles, _cfg(transport=transport), n_ranks)
    got = _forces(particles, _cfg(transport=transport, backend="numba"),
                  n_ranks)
    assert got[2] == ref[2]
    assert _rel(got[0], ref[0]) < ENVELOPE
    assert _rel(got[1], ref[1]) < ENVELOPE
