"""Tests for the unit system and paper model constants."""

import pytest

from repro import constants as c


def test_velocity_unit():
    # sqrt(G * 1e10 Msun / kpc) ~ 207.4 km/s
    assert c.VELOCITY_UNIT_KMS == pytest.approx(207.38, rel=1e-3)


def test_time_unit():
    # kpc / 207 km/s ~ 4.71 Myr
    assert c.TIME_UNIT_MYR == pytest.approx(4.714, rel=1e-3)


def test_roundtrip_conversions():
    assert c.internal_to_kms(c.kms_to_internal(220.0)) == pytest.approx(220.0)
    assert c.internal_to_myr(c.myr_to_internal(75.0)) == pytest.approx(75.0)
    assert c.internal_to_gyr(c.gyr_to_internal(6.0)) == pytest.approx(6.0)
    assert c.internal_to_msun(c.msun_to_internal(5e10)) == pytest.approx(5e10)


def test_paper_masses():
    p = c.MILKY_WAY_PAPER
    assert c.internal_to_msun(p.halo_mass) == pytest.approx(6.0e11)
    assert c.internal_to_msun(p.disk_mass) == pytest.approx(5.0e10)
    assert c.internal_to_msun(p.bulge_mass) == pytest.approx(4.6e9)


def test_particle_fractions_are_equal_mass():
    p = c.MILKY_WAY_PAPER
    fb, fd, fh = p.particle_fractions()
    assert fb + fd + fh == pytest.approx(1.0)
    # Paper split: ~1 : 3 : 47 billion over bulge : disk : halo.
    assert fh / fd == pytest.approx(60.0 / 5.0, rel=1e-6)
    assert fd / fb == pytest.approx(5.0 / 0.46, rel=1e-6)


def test_paper_counts_sum_and_ordering():
    """The paper's published split sums exactly and is halo-dominated.

    Note: the published counts are *not* exactly proportional to the
    rounded component masses of Sec. IV (the underlying Widrow-Pym-
    Dubinski blueprint has more structure than the three quoted numbers),
    so we verify consistency of the totals rather than exact fractions;
    our generator enforces equal mass against the quoted masses instead.
    """
    assert c.PAPER_N_BULGE + c.PAPER_N_DISK + c.PAPER_N_HALO == c.PAPER_N_TOTAL
    assert c.PAPER_N_HALO > 10 * c.PAPER_N_DISK > 10 * c.PAPER_N_BULGE


def test_mass_resolution_is_about_10_msun():
    """Sec. IV: 'a mass resolution of ~10 Msun' at 51e9 particles."""
    p = c.MILKY_WAY_PAPER
    m = c.internal_to_msun(p.total_mass) / c.PAPER_N_TOTAL
    assert 5.0 < m < 20.0


def test_production_timestep():
    assert c.PAPER_TIMESTEP_MYR == pytest.approx(0.075)
    assert c.PAPER_SOFTENING_KPC == pytest.approx(1e-3)
    assert c.PAPER_THETA == 0.4
    assert c.PAPER_NLEAF == 16
