"""Run-to-run report diffing: delta math, thresholds, golden fixtures.

``python -m repro.obs.report a.json b.json`` compares two traces phase
by phase; ``--threshold`` turns it into a CI gate (exit 1 on any phase
of B slower than A beyond the relative fraction, with a ``--min-abs``
noise floor).  The golden pair under tests/data/ freezes a fault-free
run against one slowed down by a deterministic 2 ms transport fault on
rank 1, so the gate is exercised against a *real* regression, not a
synthetic one.
"""

import json
import pathlib

import pytest

from repro.obs import Tracer, VirtualClock, chrome_trace_json
from repro.obs.report import (
    _json_report,
    diff_lines,
    diff_regressions,
    diff_reports,
    main,
)

DATA = pathlib.Path(__file__).parent / "data"
GOLDEN_CLEAN = DATA / "golden_clean.json"
GOLDEN_SLOW = DATA / "golden_slow.json"


def _trace(scale: float = 1.0, skip_comm: bool = False):
    """One rank, one step, phase times scaled by ``scale``."""
    tr = Tracer(clock=VirtualClock())
    t = 0.0
    phases = [("sorting", 0.010), ("domain_update", 0.020),
              ("tree_construction", 0.005), ("tree_properties", 0.002),
              ("gravity_local", 0.100), ("gravity_let", 0.030),
              ("non_hidden_comm", 0.004), ("other", 0.002)]
    for name, dur in phases:
        if skip_comm and name == "non_hidden_comm":
            continue
        dur *= scale
        tr.record(name, 0, t, t + dur, cat="phase", step=0,
                  **({"n_particles": 500, "n_pp": 1000, "n_pc": 100}
                     if name == "gravity_local" else {}))
        t += dur
    return json.loads(chrome_trace_json(tr))


def test_diff_rows_exact_math():
    diff = diff_reports(_json_report(_trace(1.0)), _json_report(_trace(1.2)))
    row = diff["rows"]["gravity_local"]
    assert row["a"] == pytest.approx(0.100)
    assert row["b"] == pytest.approx(0.120)
    assert row["delta"] == pytest.approx(0.020)
    assert row["rel"] == pytest.approx(0.20)
    assert diff["rows"]["total"]["rel"] == pytest.approx(0.20)
    assert diff["n_ranks"] == {"a": 1, "b": 1}


def test_diff_phase_appearing_from_zero_has_no_rel():
    diff = diff_reports(_json_report(_trace(skip_comm=True)),
                        _json_report(_trace()))
    row = diff["rows"]["non_hidden_comm"]
    assert row["a"] == 0.0 and row["delta"] == pytest.approx(0.004)
    assert row["rel"] is None
    # ... and it still counts as a regression when above the floor.
    assert "non_hidden_comm" in diff_regressions(diff, threshold=10.0)
    assert "non_hidden_comm" not in diff_regressions(diff, threshold=10.0,
                                                    min_abs=0.005)


def test_diff_regressions_threshold_and_floor():
    diff = diff_reports(_json_report(_trace(1.0)), _json_report(_trace(1.2)))
    assert diff_regressions(diff, threshold=0.25) == []
    bad = diff_regressions(diff, threshold=0.10)
    assert "gravity_local" in bad and "total" in bad
    # min_abs floor drops the microscopic phases but keeps the big ones.
    floored = diff_regressions(diff, threshold=0.10, min_abs=0.003)
    assert floored == ["domain_update", "gravity_local", "gravity_let",
                       "total"]
    # A faster B never regresses.
    assert diff_regressions(
        diff_reports(_json_report(_trace(1.0)), _json_report(_trace(0.5))),
        threshold=0.0) == []


def test_diff_lines_render():
    diff = diff_reports(_json_report(_trace(1.0)), _json_report(_trace(1.2)))
    text = "\n".join(diff_lines(diff, threshold=0.1))
    assert "Run diff (A -> B, 1 vs 1 ranks" in text
    assert "+20.0%" in text and "TOTAL" in text
    assert "REGRESSION:" in text
    ok = "\n".join(diff_lines(diff, threshold=0.5))
    assert "OK: no phase slower" in ok


def test_cli_single_trace_unchanged(tmp_path, capsys):
    path = tmp_path / "a.json"
    path.write_text(json.dumps(_trace()))
    assert main([str(path)]) == 0
    assert "Table II breakdown" in capsys.readouterr().out


def test_cli_diff_exit_codes(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(_trace(1.0)))
    b.write_text(json.dumps(_trace(1.2)))
    # No threshold: informational, exit 0.
    assert main([str(a), str(b)]) == 0
    assert "Run diff" in capsys.readouterr().out
    # Loose threshold: OK line, exit 0.
    assert main([str(a), str(b), "--threshold", "0.5"]) == 0
    capsys.readouterr()
    # Tight threshold: exit 1.
    assert main([str(a), str(b), "--threshold", "0.1"]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_cli_diff_json(tmp_path, capsys):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    a.write_text(json.dumps(_trace(1.0)))
    b.write_text(json.dumps(_trace(1.2)))
    assert main([str(a), str(b), "--json", "--threshold", "0.1"]) == 1
    rep = json.loads(capsys.readouterr().out)
    assert rep["threshold"] == 0.1
    assert "gravity_local" in rep["regressions"]
    assert rep["rows"]["total"]["rel"] == pytest.approx(0.20)


# -- golden fixtures -------------------------------------------------------

def test_golden_fixture_detects_slowdown_fault(capsys):
    """The frozen fault-free/slowdown pair trips the regression gate."""
    assert main([str(GOLDEN_CLEAN), str(GOLDEN_SLOW), "--validate",
                 "--threshold", "0.10"]) == 1
    captured = capsys.readouterr()
    assert "schema OK" in captured.err
    out = captured.out
    assert "Run diff (A -> B, 2 vs 2 ranks" in out
    assert "REGRESSION:" in out and "total" in out.split("REGRESSION:")[1]

    diff = diff_reports(_json_report(json.loads(GOLDEN_CLEAN.read_text())),
                        _json_report(json.loads(GOLDEN_SLOW.read_text())))
    # The 2 ms sleeps land in wall time: B's step total is strictly
    # slower, by well over the 10% gate (exact seconds are frozen but
    # not asserted -- see tests/data/regen_golden_diff.py).
    assert diff["rows"]["total"]["delta"] > 0
    assert diff["rows"]["total"]["rel"] > 0.10


def test_golden_fixture_self_diff_is_clean(capsys):
    """A trace diffed against itself is all-zero and exits 0."""
    assert main([str(GOLDEN_CLEAN), str(GOLDEN_CLEAN),
                 "--threshold", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "OK: no phase slower" in out
    diff = diff_reports(*[_json_report(json.loads(GOLDEN_CLEAN.read_text()))
                          for _ in range(2)])
    assert all(r["delta"] == 0.0 for r in diff["rows"].values())
