"""Additional perfmodel coverage: scaling-point helpers and edge cases."""

import pytest

from repro.perfmodel import (
    InteractionModel,
    PIZ_DAINT,
    TITAN,
    model_step,
    tree_kernel_rates,
    weak_scaling,
)


def test_gravity_efficiency_metric():
    pts = weak_scaling(PIZ_DAINT, [1, 1024])
    eff = pts[1].gravity_efficiency_vs(pts[0])
    assert 0.8 < eff <= 1.05


def test_scaling_point_totals():
    pts = weak_scaling(TITAN, [256], n_per_gpu=13e6)
    assert pts[0].n_total == pytest.approx(256 * 13e6)


def test_full_piz_daint_machine():
    """The 5200-GPU production configuration of the 51B run."""
    bd = model_step(PIZ_DAINT, 5200, 13e6)
    assert 4.0 < bd.total < 4.6
    assert bd.counts.n_pc / 13e6 > 6500


def test_two_gpu_edge():
    """Smallest multi-GPU configuration stays self-consistent."""
    im = InteractionModel()
    assert im.pc_let(13e6, 2) > 0
    assert im.pc_total(13e6, 2) > im.pc_isolated(13e6)
    bd = model_step(TITAN, 2, 13e6)
    assert bd.gravity_let > 0
    assert bd.domain_update > 0


def test_aggregate_rate_between_component_rates():
    kr = tree_kernel_rates()
    agg = kr.aggregate_gflops(1000, 1000)
    assert kr.rpp_gflops < agg < kr.rpc_gflops


def test_pure_pp_and_pure_pc_rates():
    kr = tree_kernel_rates()
    assert kr.aggregate_gflops(1000, 0) == pytest.approx(kr.rpp_gflops)
    assert kr.aggregate_gflops(0, 1000) == pytest.approx(kr.rpc_gflops)


def test_interaction_model_custom_parameters():
    im = InteractionModel(pc_ref=5000.0, pc_log_slope=100.0)
    assert im.pc_isolated(13e6) == pytest.approx(5000.0)
    assert im.pc_isolated(26e6) == pytest.approx(5100.0)


def test_pc_isolated_floors_at_zero():
    # The clamp engages once the log term exceeds the reference count
    # (n/n_ref < 2^(-4529/176)); pass an absurdly small n to hit it.
    im = InteractionModel()
    assert im.pc_isolated(0.1) == 0.0
    assert im.pc_isolated(1.0) > 0.0
