"""End-to-end observability: a traced 4-rank run, checked every way.

The ISSUE acceptance criteria live here: the exported Chrome trace is
schema-valid; the report reconstructs the same Table II breakdown the
driver-side :func:`aggregate_rank_histories` computes; the metrics
registry's traffic series equal the legacy ``TrafficLog`` totals
exactly; the blocked-recv wait timer is wired through from transport to
statistics; and an unpicklable payload is estimated, not dropped.
"""

import json
import threading

import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import Tracer, VirtualClock, chrome_trace_json, validate_chrome_trace
from repro.obs.report import statistics_from_trace
from repro.parallel.statistics import run_statistics
from repro.simmpi import SimWorld, spmd_run
from repro.simmpi.traffic import payload_bytes

N_RANKS = 4
N = 1200


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer(clock=VirtualClock())
    world = SimWorld(N_RANKS)
    sims = run_parallel_simulation(
        N_RANKS, plummer_model(N, seed=17),
        SimulationConfig(theta=0.6, softening=0.02, dt=0.01),
        n_steps=2, world=world, trace=tracer)
    return tracer, world, sims


def test_trace_is_schema_valid(traced_run):
    tracer, _, _ = traced_run
    doc = json.loads(chrome_trace_json(tracer))
    validate_chrome_trace(doc)
    lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] != "M"}
    assert lanes == set(range(N_RANKS))


def test_report_matches_driver_statistics(traced_run):
    """Trace-side and driver-side Table II reductions agree."""
    tracer, _, sims = traced_run
    doc = json.loads(chrome_trace_json(tracer))
    from_trace = statistics_from_trace(doc)
    from_driver = run_statistics(sims)
    assert from_trace.n_ranks == from_driver.n_ranks == N_RANKS
    assert from_trace.n_particles_total == from_driver.n_particles_total == N
    for phase, val in from_driver.mean_step.as_dict().items():
        # Identical clock readings; only the micro-second round-trip
        # through the trace-event format separates the two.
        assert from_trace.mean_step.as_dict()[phase] == \
            pytest.approx(val, abs=1e-5), phase
    assert from_trace.mean_step.counts.n_pp == from_driver.mean_step.counts.n_pp
    assert from_trace.mean_step.counts.n_pc == from_driver.mean_step.counts.n_pc
    assert from_trace.recv_wait_max == \
        pytest.approx(from_driver.recv_wait_max, abs=1e-5)
    assert from_trace.imbalance == pytest.approx(from_driver.imbalance)


def test_registry_equals_legacy_traffic(traced_run):
    """One source of truth: registry series == TrafficLog views, exactly."""
    _, world, _ = traced_run
    reg, log = world.metrics, world.traffic
    assert reg.get("traffic_bytes_total").total() == log.total_bytes
    p2p = reg.get("traffic_p2p_bytes_total").series()
    assert {(int(s), int(d)): int(v) for (s, d), v in p2p.items()} == \
        log.p2p_bytes
    per_phase = {k[0]: int(v)
                 for k, v in reg.get("traffic_bytes_total").series().items()}
    assert per_phase == {ph: d["bytes"] for ph, d in log.summary().items()}
    assert log.total_bytes > 0


def test_recv_wait_wired_to_metrics_and_stats(traced_run):
    _, world, sims = traced_run
    hist = world.metrics.get("comm_recv_wait_seconds")
    # Every blocking recv observed exactly once per rank lane.
    total_obs = sum(hist.count(rank=r) for r in range(N_RANKS))
    assert total_obs > 0
    for r in range(N_RANKS):
        assert world.recv_wait_seconds(r) == pytest.approx(hist.sum(rank=r))
    assert world.recv_waits == [world.recv_wait_seconds(r)
                                for r in range(N_RANKS)]
    # Driver-side cumulative wait is non-negative and finite.
    for s in sims:
        assert s.recv_wait_seconds >= 0.0


def test_spans_emitted_at_every_layer(traced_run):
    tracer, _, _ = traced_run
    names = {e.name for e in tracer.events()}
    assert {"sorting", "domain_update", "tree_construction",
            "tree_properties", "gravity_local", "gravity_let",
            "boundary_exchange", "let_exchange", "other"} <= names
    cats = {e.cat for e in tracer.events()}
    assert {"phase", "comm"} <= cats
    assert "particle_exchange" in names       # nested exchange span
    assert "allgather" in names               # collective span
    # send->recv flow pairs are balanced.
    starts = [e for e in tracer.events() if e.ph == "s"]
    finishes = [e for e in tracer.events() if e.ph == "f"]
    assert len(starts) == len(finishes) > 0
    assert {e.flow_id for e in starts} == {e.flow_id for e in finishes}


def test_unpicklable_payload_estimated_not_dropped():
    world = SimWorld(2)

    def prog(comm):
        if comm.rank == 0:
            comm.send(threading.Lock(), dest=1, tag=0)   # unpicklable
        else:
            comm.recv(source=0, tag=0)

    spmd_run(2, prog, world=world)
    assert world.traffic.unmeasured_payloads == 1
    assert world.metrics.get(
        "traffic_unmeasured_payloads_total").value() == 1
    assert world.traffic.total_bytes > 0      # estimate, never zero


def test_payload_bytes_fallback_positive():
    assert payload_bytes(threading.Lock()) > 0
