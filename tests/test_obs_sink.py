"""Sink abstraction tests: streaming, ring drop accounting, tee, coercion.

The tentpole property under test: the tracer no longer *has* to buffer.
Events flow incrementally into pluggable sinks -- a streaming JSONL
writer whose final bytes equal the post-hoc export, a bounded ring
whose drops are warned about and counted, and tees of either -- so a
long run's tracing memory is O(1), not O(steps).
"""

import json
import warnings

import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.ics import plummer_model
from repro.obs import (
    NULL_SINK,
    BufferSink,
    NullSink,
    RingSink,
    StreamingJsonlSink,
    TeeSink,
    TraceDropWarning,
    Tracer,
    VirtualClock,
    coerce_sink,
    encode_jsonl_line,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import TraceEvent
from repro.simmpi import SimWorld


def _event(rank=0, seq=0, name="phase_x", ts=1.0, dur=0.5):
    return TraceEvent(name=name, cat="phase", ph="X", rank=rank,
                      ts=ts, dur=dur, seq=seq, args={"step": 0})


def _fill(sink, n, rank=0):
    for i in range(n):
        sink.emit(_event(rank=rank, seq=i, ts=float(i)))


# -- BufferSink ------------------------------------------------------------

def test_buffer_sink_retains_all_sorted():
    sink = BufferSink()
    sink.emit(_event(rank=1, seq=0))
    sink.emit(_event(rank=0, seq=1))
    sink.emit(_event(rank=0, seq=0))
    assert [(e.rank, e.seq) for e in sink.events()] == [(0, 0), (0, 1), (1, 0)]
    assert len(sink) == 3
    sink.clear()
    assert sink.events() == []


# -- RingSink: bounded memory with drop accounting -------------------------

def test_ring_sink_bounds_memory_and_counts_drops():
    sink = RingSink(capacity=10)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        _fill(sink, 25)
    assert len(sink) == 10
    assert sink.dropped == 15
    # Oldest events evicted, newest retained.
    assert [e.seq for e in sink.events()] == list(range(15, 25))
    # Exactly one warning, not one per dropped event.
    drops = [w for w in caught if issubclass(w.category, TraceDropWarning)]
    assert len(drops) == 1
    assert "RingSink" in str(drops[0].message)


def test_ring_sink_increments_registry_counter():
    reg = MetricsRegistry()
    sink = RingSink(capacity=4, registry=reg)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        _fill(sink, 9)
    counter = reg.get("trace_events_dropped_total")
    assert counter is not None and int(counter.total()) == 5


def test_ring_sink_bind_metrics_folds_earlier_drops():
    """Drops before the registry is attached still land in the counter."""
    sink = RingSink(capacity=2)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        _fill(sink, 5)  # 3 drops, no registry yet
    reg = MetricsRegistry()
    sink.bind_metrics(reg)
    assert int(reg.get("trace_events_dropped_total").total()) == 3
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        _fill(sink, 2)  # 2 more drops, live counter now
    assert int(reg.get("trace_events_dropped_total").total()) == 5


def test_ring_sink_counts_every_drop_when_warning_escalates():
    """Sustained overflow keeps counting per event even when the
    one-shot TraceDropWarning is escalated to an error: the ring update
    (evict + count + append) must complete before the warning fires, so
    no event is lost and no later drop goes unaccounted."""
    reg = MetricsRegistry()
    sink = RingSink(capacity=3, registry=reg)
    _fill(sink, 3)  # exactly full, no drops yet
    with warnings.catch_warnings():
        warnings.simplefilter("error", TraceDropWarning)
        with pytest.raises(TraceDropWarning):
            sink.emit(_event(seq=3))
        # The event that triggered the warning was still retained...
        assert [e.seq for e in sink.events()] == [1, 2, 3]
        assert sink.dropped == 1
        # ...and a sustained burst afterwards raises nothing (the
        # warning is one-shot) while every drop still hits the counter.
        for i in range(4, 14):
            sink.emit(_event(seq=i))
    assert sink.dropped == 11
    assert int(reg.get("trace_events_dropped_total").total()) == 11
    assert [e.seq for e in sink.events()] == [11, 12, 13]


def test_world_attach_tracer_binds_drop_counter():
    """SimWorld.attach_tracer wires ring drops into the world registry."""
    world = SimWorld(2)
    tracer = Tracer(clock=VirtualClock(), sink=RingSink(capacity=8))
    world.attach_tracer(tracer)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        for i in range(20):
            tracer.instant("tick", 0)
    counter = world.metrics.get("trace_events_dropped_total")
    assert counter is not None and int(counter.total()) == 12


# -- StreamingJsonlSink: incremental bytes == post-hoc export --------------

def _traced_run(sink=None):
    tracer = Tracer(clock=VirtualClock(), sink=sink)
    particles = plummer_model(400, seed=5)
    run_parallel_simulation(2, particles, SimulationConfig(theta=0.6),
                            n_steps=2, trace=tracer)
    return tracer


def test_streaming_jsonl_matches_buffered_export(tmp_path):
    streamed = tmp_path / "streamed.jsonl"
    buffered = tmp_path / "buffered.jsonl"

    sink = StreamingJsonlSink(streamed, flush_every=16)
    with _traced_run(sink=[BufferSink(), sink]) as tracer:
        write_jsonl(tracer, buffered)
    assert streamed.read_bytes() == buffered.read_bytes()
    assert sink.n_events == len(buffered.read_text().splitlines())


def test_streaming_sink_memory_stays_bounded(tmp_path):
    """The acceptance criterion: tracer memory constant in run length."""
    sink = StreamingJsonlSink(tmp_path / "t.jsonl", flush_every=8)
    tracer = _traced_run(sink=sink)
    tracer.close()
    assert sink.max_buffered <= 8 * 2  # flush_every per rank, 2 ranks
    # With no retaining sink attached the tracer itself holds nothing.
    assert tracer.events() == []


def test_streaming_sink_part_files_cleaned_up(tmp_path):
    path = tmp_path / "t.jsonl"
    sink = StreamingJsonlSink(path, flush_every=4)
    for rank in range(2):
        _fill(sink, 6, rank=rank)
    sink.close()
    assert path.exists()
    assert list(tmp_path.glob("*.part")) == []
    lines = path.read_text().splitlines()
    assert len(lines) == 12
    # Rank-major, seq-ordered -- same order write_jsonl produces.
    recs = [json.loads(ln) for ln in lines]
    assert [(r["rank"], r["seq"]) for r in recs] == \
        [(r, s) for r in range(2) for s in range(6)]


def test_streaming_sink_empty_trace_writes_empty_file(tmp_path):
    path = tmp_path / "empty.jsonl"
    StreamingJsonlSink(path).close()
    assert path.read_bytes() == b""
    tracer = Tracer(clock=VirtualClock())
    write_jsonl(tracer, tmp_path / "empty2.jsonl")
    assert (tmp_path / "empty2.jsonl").read_bytes() == b""


def test_encode_jsonl_line_canonical():
    line = encode_jsonl_line(_event(rank=1, seq=2))
    rec = json.loads(line)
    assert rec == {"rank": 1, "seq": 2, "ph": "X", "name": "phase_x",
                   "cat": "phase", "ts": 1.0, "dur": 0.5,
                   "args": {"step": 0}}
    # Canonical form: sorted keys, no whitespace.
    assert line == json.dumps(rec, sort_keys=True, separators=(",", ":"))


# -- TeeSink / NullSink / coercion ----------------------------------------

def test_tee_sink_forwards_to_all():
    buf, ring = BufferSink(), RingSink(capacity=2)
    tee = TeeSink(buf, ring)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        _fill(tee, 5)
    assert len(buf) == 5 and len(ring) == 2 and ring.dropped == 3
    assert tee.retains
    assert [e.seq for e in tee.events()] == list(range(5))  # first retainer
    tee.clear()
    assert len(buf) == 0 and len(ring) == 0


def test_null_sink_discards():
    _fill(NULL_SINK, 3)
    assert not NULL_SINK.retains
    assert NULL_SINK.events() == []


@pytest.mark.parametrize("spec,kind", [
    (BufferSink(), BufferSink),
    (1024, RingSink),
    ("trace.jsonl", StreamingJsonlSink),
    ([BufferSink(), 16], TeeSink),
])
def test_coerce_sink(spec, kind, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    sink = coerce_sink(spec)
    assert isinstance(sink, kind)
    if isinstance(sink, StreamingJsonlSink):
        sink.close()


def test_coerce_sink_rejects_bool_and_junk():
    with pytest.raises(TypeError):
        coerce_sink(True)
    with pytest.raises(TypeError):
        coerce_sink(object())


# -- Tracer integration ----------------------------------------------------

def test_tracer_default_buffers_and_add_sink():
    tracer = Tracer(clock=VirtualClock())
    assert isinstance(tracer.sinks[0], BufferSink)
    ring = RingSink(capacity=4)
    tracer.add_sink(ring)
    tracer.instant("tick", 0)
    assert len(tracer.events()) == 1 and len(ring) == 1


def test_tracer_ring_only_keeps_tail():
    tracer = Tracer(clock=VirtualClock(), sink=RingSink(capacity=3))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", TraceDropWarning)
        for _ in range(7):
            tracer.instant("tick", 0)
    assert [e.seq for e in tracer.events()] == [4, 5, 6]


def test_run_parallel_simulation_trace_sink_path(tmp_path):
    """A bare path as trace_sink streams the run with an owned tracer."""
    out = tmp_path / "run.jsonl"
    run_parallel_simulation(2, plummer_model(300, seed=7),
                            SimulationConfig(theta=0.7), n_steps=1,
                            trace_sink=out)
    lines = out.read_text().splitlines()
    assert lines and all(json.loads(ln)["rank"] in (0, 1) for ln in lines)


def test_simulation_trace_sink(tmp_path):
    from repro.core.simulation import Simulation
    out = tmp_path / "serial.jsonl"
    sim = Simulation(plummer_model(200, seed=3), SimulationConfig(dt=0.01),
                     trace_sink=out)
    sim.evolve(1)
    sim.tracer.close()
    assert out.read_text().splitlines()
