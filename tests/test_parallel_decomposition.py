"""Tests for DomainDecomposition and domain_update."""

import numpy as np
import pytest

from repro.parallel import DomainDecomposition, domain_update
from repro.simmpi import spmd_run


def _decomp(p=4):
    edges = np.linspace(0, 2 ** 63, p + 1).astype(np.uint64)
    edges[-1] = np.uint64(0xFFFFFFFFFFFFFFFF)
    return DomainDecomposition(boundaries=edges)


def test_rank_of_keys_partition():
    d = _decomp(4)
    keys = np.random.default_rng(47).integers(0, 2 ** 63, 1000, dtype=np.uint64)
    ranks = d.rank_of_keys(keys)
    assert ranks.min() >= 0 and ranks.max() < 4
    # every key belongs to the interval of its assigned rank
    for r in range(4):
        sel = ranks == r
        lo, hi = d.key_range(r)
        assert np.all(keys[sel] >= lo)
        assert np.all(keys[sel].astype(np.float64) < float(hi))


def test_counts_match_rank_assignment():
    d = _decomp(3)
    keys = np.random.default_rng(48).integers(0, 2 ** 63, 500, dtype=np.uint64)
    counts = d.counts(keys)
    ranks = d.rank_of_keys(keys)
    assert np.array_equal(counts, np.bincount(ranks, minlength=3))


def test_n_domains():
    assert _decomp(7).n_domains == 7


def test_domain_update_methods_produce_partition():
    def prog(comm):
        rng = np.random.default_rng(49 + comm.rank)
        keys = np.sort(rng.integers(0, 2 ** 63, 2000, dtype=np.uint64))
        d1 = domain_update(comm, keys, method="hierarchical")
        d2 = domain_update(comm, keys, method="serial")
        return d1.boundaries, d2.boundaries

    res = spmd_run(4, prog)
    for b1, b2 in res:
        assert len(b1) == 5 and len(b2) == 5
        assert b1[0] == 0 and b1[-1] == np.uint64(0xFFFFFFFFFFFFFFFF)


def test_domain_update_unknown_method():
    def prog(comm):
        domain_update(comm, np.zeros(1, dtype=np.uint64), method="voronoi")
    with pytest.raises(RuntimeError):
        spmd_run(2, prog)
