"""Tests for the Eddington-inversion velocity sampler."""

import numpy as np
import pytest

from repro.gravity import direct_forces
from repro.ics import PlummerProfile, HernquistProfile, milky_way_model
from repro.ics.eddington import (
    build_eddington_model,
    relative_potential_from_mass,
    sample_eddington_velocities,
    sample_speeds,
)
from repro.ics.sampling import spherical_positions
from repro.integrator import system_diagnostics
from repro.particles import ParticleSet


@pytest.fixture(scope="module")
def plummer():
    return PlummerProfile(mass=1.0, scale_radius=1.0)


def test_relative_potential_matches_analytic(plummer):
    """psi from the mass integral must equal -phi for Plummer."""
    r = np.geomspace(0.01, 50.0, 512)
    psi = relative_potential_from_mass(plummer.enclosed_mass, r)
    assert np.allclose(psi, -plummer.potential(r), rtol=1e-3)


def test_distribution_function_positive_and_increasing(plummer):
    """Plummer's f(E) ~ E^{7/2}: positive, increasing in E."""
    model = build_eddington_model(plummer.density, plummer.enclosed_mass,
                                  r_min=1e-3, r_max=50.0)
    assert np.all(model.f_grid >= 0.0)
    upper = model.f_grid[len(model.f_grid) // 2:]
    # Monotone up to quadrature wiggle.
    assert np.all(np.diff(upper) >= -1e-6 * upper.max())


def test_plummer_f_power_law(plummer):
    """Check the analytic exponent: f(E) proportional to E^3.5."""
    model = build_eddington_model(plummer.density, plummer.enclosed_mass,
                                  r_min=1e-4, r_max=200.0)
    # mid-range energies, away from grid edges
    sel = (model.e_grid > 0.05) & (model.e_grid < 0.5) & (model.f_grid > 0)
    slope = np.polyfit(np.log(model.e_grid[sel]),
                       np.log(model.f_grid[sel]), 1)[0]
    assert slope == pytest.approx(3.5, abs=0.3)


def test_speeds_bounded_by_escape(plummer):
    model = build_eddington_model(plummer.density, plummer.enclosed_mass,
                                  r_min=1e-3, r_max=50.0)
    rng = np.random.default_rng(80)
    r = rng.uniform(0.1, 10.0, 2000)
    v = sample_speeds(model, r, rng)
    v_esc = np.sqrt(2.0 * model.psi_of_r(r))
    assert np.all(v <= v_esc + 1e-12)
    assert np.all(v >= 0.0)


def test_plummer_realization_in_virial_equilibrium(plummer):
    rng = np.random.default_rng(81)
    n = 6000
    pos = spherical_positions(plummer.mass_fraction, 30.0, rng, n)
    vel = sample_eddington_velocities(pos, plummer.density,
                                      plummer.enclosed_mass, 30.0, rng)
    ps = ParticleSet(pos=pos, vel=vel, mass=np.full(n, 1.0 / n))
    _, phi = direct_forces(ps.pos, ps.mass, eps=0.01)
    d = system_diagnostics(ps, phi)
    assert d.virial_ratio == pytest.approx(1.0, abs=0.08)


def test_central_dispersion_matches_analytic(plummer):
    """Plummer: sigma_1d^2(0) = M / (6 a)."""
    rng = np.random.default_rng(82)
    n = 20000
    pos = spherical_positions(plummer.mass_fraction, 30.0, rng, n)
    vel = sample_eddington_velocities(pos, plummer.density,
                                      plummer.enclosed_mass, 30.0, rng)
    r = np.linalg.norm(pos, axis=1)
    sel = r < 0.3
    sigma = np.std(vel[sel, 0])
    assert sigma == pytest.approx(np.sqrt(1.0 / 6.0), rel=0.08)


def test_hernquist_component_in_composite_potential():
    """A Hernquist bulge sampled in a deeper total potential must be
    hotter than in isolation (it feels the extra mass)."""
    bulge = HernquistProfile(mass=0.5, scale_radius=0.7, r_cut=10.0)
    heavy_total = lambda r: bulge.enclosed_mass(r) + 5.0 * np.minimum(
        np.asarray(r) / 10.0, 1.0)
    rng = np.random.default_rng(83)
    pos = spherical_positions(bulge.mass_fraction, 10.0, rng, 4000)
    v_iso = sample_eddington_velocities(pos, bulge.density,
                                        bulge.enclosed_mass, 10.0,
                                        np.random.default_rng(1))
    v_comp = sample_eddington_velocities(pos, bulge.density, heavy_total,
                                         10.0, np.random.default_rng(1))
    assert np.std(v_comp) > np.std(v_iso)


def test_milky_way_eddington_option():
    mw = milky_way_model(5000, seed=84, velocity_method="eddington")
    _, phi = direct_forces(mw.pos, mw.mass, eps=0.05)
    d = system_diagnostics(mw, phi)
    assert d.virial_ratio == pytest.approx(1.0, abs=0.15)


def test_unknown_velocity_method():
    with pytest.raises(ValueError):
        milky_way_model(100, velocity_method="maxwell")


def test_eddington_vs_jeans_consistency():
    """Both samplers must produce comparable dispersion profiles (the
    DF is exact, the Jeans one matches second moments)."""
    mw_j = milky_way_model(6000, seed=85, velocity_method="jeans")
    mw_e = milky_way_model(6000, seed=85, velocity_method="eddington")
    halo_j = mw_j.select_component(2)
    halo_e = mw_e.select_component(2)
    r_j = np.linalg.norm(halo_j.pos, axis=1)
    r_e = np.linalg.norm(halo_e.pos, axis=1)
    sel_j = (r_j > 20) & (r_j < 60)
    sel_e = (r_e > 20) & (r_e < 60)
    s_j = np.std(halo_j.vel[sel_j])
    s_e = np.std(halo_e.vel[sel_e])
    assert s_e == pytest.approx(s_j, rel=0.25)
