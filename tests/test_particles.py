"""Tests for the ParticleSet container."""

import numpy as np
import pytest

from repro.particles import (
    COMPONENT_BULGE,
    COMPONENT_DISK,
    COMPONENT_HALO,
    ParticleSet,
)


def _make(n=10, seed=28):
    rng = np.random.default_rng(seed)
    return ParticleSet(pos=rng.normal(size=(n, 3)),
                       vel=rng.normal(size=(n, 3)),
                       mass=rng.uniform(0.5, 1.0, n))


def test_defaults():
    ps = _make(5)
    assert len(ps) == 5 and ps.n == 5
    assert np.array_equal(ps.ids, np.arange(5))
    assert np.all(ps.component == -1)


def test_shape_validation():
    with pytest.raises(ValueError):
        ParticleSet(pos=np.zeros((3, 3)), vel=np.zeros((2, 3)),
                    mass=np.zeros(3))
    with pytest.raises(ValueError):
        ParticleSet(pos=np.zeros((3, 3)), vel=np.zeros((3, 3)),
                    mass=np.zeros(3), ids=np.zeros(2, dtype=np.int64))


def test_select_copies():
    ps = _make()
    sub = ps.select(np.array([1, 3]))
    sub.pos[0] = 99.0
    assert ps.pos[1, 0] != 99.0
    assert np.array_equal(sub.ids, [1, 3])


def test_select_component():
    ps = _make(6)
    ps.component[:] = [COMPONENT_BULGE, COMPONENT_DISK, COMPONENT_HALO] * 2
    disk = ps.select_component(COMPONENT_DISK)
    assert disk.n == 2
    assert np.all(disk.component == COMPONENT_DISK)


def test_reorder_permutes_everything():
    ps = _make(4)
    ids0 = ps.ids.copy()
    pos0 = ps.pos.copy()
    order = np.array([3, 1, 0, 2])
    ps.reorder(order)
    assert np.array_equal(ps.ids, ids0[order])
    assert np.array_equal(ps.pos, pos0[order])


def test_concatenate_roundtrip():
    a, b = _make(3, seed=1), _make(4, seed=2)
    c = ParticleSet.concatenate([a, b])
    assert c.n == 7
    assert np.allclose(c.pos[:3], a.pos)
    assert np.allclose(c.pos[3:], b.pos)


def test_concatenate_empty_list_raises():
    with pytest.raises(ValueError):
        ParticleSet.concatenate([])


def test_empty_set():
    ps = ParticleSet.empty()
    assert ps.n == 0


def test_kinetic_energy():
    ps = ParticleSet(pos=np.zeros((2, 3)),
                     vel=np.array([[1.0, 0, 0], [0, 2.0, 0]]),
                     mass=np.array([2.0, 1.0]))
    assert ps.kinetic_energy() == pytest.approx(0.5 * 2 * 1 + 0.5 * 1 * 4)


def test_center_of_mass_and_momentum():
    ps = ParticleSet(pos=np.array([[0.0, 0, 0], [2.0, 0, 0]]),
                     vel=np.array([[1.0, 0, 0], [-1.0, 0, 0]]),
                     mass=np.array([1.0, 3.0]))
    assert np.allclose(ps.center_of_mass(), [1.5, 0, 0])
    assert np.allclose(ps.momentum(), [-2.0, 0, 0])
    assert np.allclose(ps.center_of_mass_velocity(), [-0.5, 0, 0])


def test_angular_momentum():
    ps = ParticleSet(pos=np.array([[1.0, 0, 0]]),
                     vel=np.array([[0, 2.0, 0]]),
                     mass=np.array([3.0]))
    assert np.allclose(ps.angular_momentum(), [0, 0, 6.0])


def test_copy_is_deep():
    ps = _make()
    c = ps.copy()
    c.vel += 1.0
    assert not np.allclose(ps.vel, c.vel)
