"""Tests for octree construction."""

import numpy as np
import pytest

from repro.octree import build_octree
from repro.sfc import BoundingBox


def _uniform(n, seed=0):
    return np.random.default_rng(seed).uniform(size=(n, 3))


def test_structure_validates():
    tree = build_octree(_uniform(3000), nleaf=16)
    tree.validate()


@pytest.mark.parametrize("curve", ["hilbert", "morton"])
def test_every_particle_in_exactly_one_leaf(curve):
    pos = _uniform(1500, seed=1)
    tree = build_octree(pos, nleaf=8, curve=curve)
    leaves = tree.leaf_cells()
    seen = np.concatenate([tree.bodies_of(int(c)) for c in leaves])
    assert len(seen) == len(pos)
    assert np.array_equal(np.sort(seen), np.arange(len(pos)))


@pytest.mark.parametrize("nleaf", [1, 4, 16, 64])
def test_leaf_capacity_respected(nleaf):
    pos = _uniform(2000, seed=2)
    tree = build_octree(pos, nleaf=nleaf)
    leaves = tree.is_leaf
    deep = tree.cell_level < 21
    assert np.all(tree.body_count[leaves & deep] <= nleaf)


def test_root_covers_everything():
    tree = build_octree(_uniform(100))
    assert tree.body_count[0] == 100
    assert tree.cell_level[0] == 0
    assert tree.cell_parent[0] == -1


def test_children_partition_parent():
    pos = _uniform(4000, seed=3)
    tree = build_octree(pos, nleaf=16)
    internal = np.flatnonzero(~tree.is_leaf)
    for c in internal:
        ch = tree.children_of(int(c))
        assert 1 <= len(ch) <= 8
        assert tree.body_count[ch].sum() == tree.body_count[c]


def test_particles_in_cell_share_prefix():
    pos = _uniform(2000, seed=4)
    tree = build_octree(pos, nleaf=16, curve="morton")
    for c in tree.leaf_cells()[:100]:
        lvl = int(tree.cell_level[c])
        if lvl == 0:
            continue
        shift = np.uint64(3 * (21 - lvl))
        f = int(tree.body_first[c])
        keys = tree.keys[f:f + int(tree.body_count[c])]
        assert len(np.unique(keys >> shift)) == 1


def test_geometric_containment():
    """Particles must sit inside their leaf cell's cube."""
    pos = _uniform(2000, seed=5)
    tree = build_octree(pos, nleaf=16)
    spos = pos[tree.order]
    for c in tree.leaf_cells()[:200]:
        f, n = int(tree.body_first[c]), int(tree.body_count[c])
        d = np.abs(spos[f:f + n] - tree.center[c])
        assert np.all(d <= tree.half[c] * (1 + 1e-9))


def test_coincident_particles_terminate():
    """Duplicated positions must not recurse forever."""
    pos = np.zeros((100, 3))
    pos[50:] = 1.0
    tree = build_octree(pos, nleaf=4)
    assert tree.n_cells >= 1
    leaves = tree.leaf_cells()
    assert tree.body_count[leaves].sum() == 100


def test_single_particle():
    tree = build_octree(np.zeros((1, 3)), nleaf=16)
    assert tree.n_cells == 1
    assert tree.is_leaf[0]


def test_empty_raises():
    with pytest.raises(ValueError):
        build_octree(np.empty((0, 3)))


def test_invalid_nleaf_raises():
    with pytest.raises(ValueError):
        build_octree(_uniform(10), nleaf=0)


def test_external_box_makes_local_tree_global_branch():
    """With a shared global box, disjoint particle subsets produce trees
    whose root prefixes are consistent cells of one global octree."""
    pos = _uniform(4000, seed=6)
    box = BoundingBox.from_positions(pos)
    left = pos[pos[:, 0] < 0.5]
    tree = build_octree(left, box=box)
    # Root geometry equals the global box, not the subset's tight box.
    assert tree.half[0] == pytest.approx(box.size / 2)


def test_order_is_permutation():
    pos = _uniform(777, seed=7)
    tree = build_octree(pos)
    assert np.array_equal(np.sort(tree.order), np.arange(777))


def test_keys_sorted():
    pos = _uniform(500, seed=8)
    tree = build_octree(pos)
    assert np.all(tree.keys[:-1] <= tree.keys[1:])


def test_deep_tree_max_level_leaf():
    """A cluster tighter than the key resolution ends at max level."""
    pos = np.zeros((40, 3))
    pos += np.random.default_rng(9).normal(scale=1e-12, size=(40, 3))
    pos[0] = [1.0, 1.0, 1.0]  # set the box scale
    tree = build_octree(pos, nleaf=2)
    assert tree.cell_level.max() <= 21
