"""Tests for Morton key encoding/decoding."""

import numpy as np
import pytest

from repro.sfc import (
    KEY_BITS_PER_DIM,
    compact_bits,
    morton_decode,
    morton_encode,
    spread_bits,
)


def test_spread_compact_roundtrip():
    x = np.arange(0, 2 ** 21, 977, dtype=np.uint64)
    assert np.array_equal(compact_bits(spread_bits(x)), x)


def test_spread_bits_places_every_third_bit():
    one = spread_bits(np.array([0b111], dtype=np.uint64))
    assert one[0] == 0b1001001


def test_encode_decode_roundtrip_random():
    rng = np.random.default_rng(0)
    coords = [rng.integers(0, 2 ** 21, 5000, dtype=np.uint64) for _ in range(3)]
    out = morton_decode(morton_encode(*coords))
    for a, b in zip(out, coords):
        assert np.array_equal(a, b)


def test_encode_is_x_major():
    # x contributes the most significant bit of every 3-bit group.
    kx = morton_encode(np.array([1], dtype=np.uint64),
                       np.array([0], dtype=np.uint64),
                       np.array([0], dtype=np.uint64))[0]
    ky = morton_encode(np.array([0], dtype=np.uint64),
                       np.array([1], dtype=np.uint64),
                       np.array([0], dtype=np.uint64))[0]
    kz = morton_encode(np.array([0], dtype=np.uint64),
                       np.array([0], dtype=np.uint64),
                       np.array([1], dtype=np.uint64))[0]
    assert kx == 4 and ky == 2 and kz == 1


def test_encode_monotone_within_octant():
    # Keys of points in the same octant share the octant's top 3 bits.
    n = 64
    hi = np.uint64(1 << 20)  # MSB of the coordinate => octant selector
    k1 = morton_encode(np.full(n, hi, dtype=np.uint64),
                       np.zeros(n, dtype=np.uint64),
                       np.arange(n, dtype=np.uint64))
    top = k1 >> np.uint64(3 * (KEY_BITS_PER_DIM - 1))
    assert np.all(top == top[0])


def test_max_coordinate_fits():
    m = np.array([(1 << 21) - 1], dtype=np.uint64)
    key = morton_encode(m, m, m)[0]
    assert key == (1 << 63) - 1


def test_out_of_range_coordinates_are_masked():
    big = np.array([1 << 21], dtype=np.uint64)  # one past max -> masks to 0
    key = morton_encode(big, big, big)[0]
    assert key == 0


def test_interleaving_locality():
    # Points close in space share long key prefixes: flipping a low
    # coordinate bit changes only low key bits.
    base = morton_encode(np.array([0b1000], dtype=np.uint64),
                         np.array([0b1000], dtype=np.uint64),
                         np.array([0b1000], dtype=np.uint64))[0]
    near = morton_encode(np.array([0b1001], dtype=np.uint64),
                         np.array([0b1000], dtype=np.uint64),
                         np.array([0b1000], dtype=np.uint64))[0]
    assert (base ^ near) < (1 << 3)
