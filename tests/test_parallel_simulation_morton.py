"""Distributed pipeline under the Morton curve (config cross-product).

The paper chose the Peano-Hilbert curve, but the machinery must be
curve-agnostic; these tests run the full distributed stack with Morton
ordering and a few other non-default configuration combinations.
"""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.core.parallel_simulation import gather_particles, run_parallel_simulation
from repro.gravity import direct_forces
from repro.ics import plummer_model


@pytest.mark.parametrize("curve", ["morton", "hilbert"])
def test_parallel_forces_match_direct_under_both_curves(curve):
    ps = plummer_model(3000, seed=106)
    cfg = SimulationConfig(theta=0.5, softening=0.03, dt=0.01, curve=curve)
    sims = run_parallel_simulation(3, ps.copy(), cfg, n_steps=1)
    out = gather_particles(sims)
    # one KDK step of the serial driver must match
    serial = Simulation(ps.copy(), cfg)
    serial.evolve(1)
    assert np.allclose(out.pos, serial.particles.pos, atol=1e-8)


def test_bh_mac_distributed():
    ps = plummer_model(2500, seed=107)
    cfg = SimulationConfig(theta=0.5, softening=0.03, dt=0.01, mac="bh")
    sims = run_parallel_simulation(2, ps.copy(), cfg, n_steps=1)
    out = gather_particles(sims)
    acc_d, _ = direct_forces(ps.pos, ps.mass, eps=cfg.softening)
    # after one step positions moved by ~v dt; just verify finite & bound
    assert np.all(np.isfinite(out.pos))
    assert out.n == 2500


def test_monopole_only_distributed():
    ps = plummer_model(2500, seed=108)
    cfg = SimulationConfig(theta=0.4, softening=0.03, dt=0.01,
                           quadrupole=False)
    sims = run_parallel_simulation(2, ps.copy(), cfg, n_steps=1)
    for s in sims:
        assert s.history[0].counts.quadrupole is False
    out = gather_particles(sims)
    serial = Simulation(ps.copy(), cfg)
    serial.evolve(1)
    assert np.allclose(out.pos, serial.particles.pos, atol=1e-8)


@pytest.mark.parametrize("nleaf,ncrit", [(4, 16), (16, 64), (32, 128)])
def test_capacity_combinations(nleaf, ncrit):
    ps = plummer_model(2000, seed=109)
    cfg = SimulationConfig(theta=0.6, softening=0.05, dt=0.01,
                           nleaf=nleaf, ncrit=ncrit)
    sims = run_parallel_simulation(2, ps.copy(), cfg, n_steps=1)
    acc = np.concatenate([s._acc for s in sims])
    ids = np.concatenate([s.particles.ids for s in sims])
    acc = acc[np.argsort(ids)]
    acc_d, _ = direct_forces(ps.pos, ps.mass, eps=cfg.softening)
    # forces were computed post-drift; compare against serial instead
    serial = Simulation(ps.copy(), cfg)
    serial.evolve(1)
    err = np.linalg.norm(acc - serial._acc, axis=1)
    scale = np.linalg.norm(serial._acc, axis=1)
    assert np.median(err / scale) < 1e-3
