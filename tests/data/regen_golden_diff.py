"""Regenerate the golden report-diff fixtures in this directory.

Two wall-clock traces of the same 2-rank, 400-particle, 2-step run:

- ``golden_clean.json``  -- fault-free :class:`~repro.simmpi.SimWorld`,
- ``golden_slow.json``   -- :class:`~repro.faults.FaultyWorld` with a
  deterministic ``slowdown(rank=1, sleep=2ms)`` schedule, stretching
  rank 1's communication wall time.

Slowdown faults sleep *wall* time, which a virtual clock cannot see, so
these fixtures are real timings frozen at generation; the golden test
(tests/test_obs_diff.py) asserts relations that survive freezing --
B strictly slower than A, nonzero exit at the threshold -- never exact
seconds.  Rerun only when the trace schema changes::

    PYTHONPATH=src python tests/data/regen_golden_diff.py
"""

import pathlib
import sys

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.faults import FaultyWorld
from repro.ics import plummer_model
from repro.obs import Tracer, write_chrome_trace
from repro.simmpi import SimWorld

HERE = pathlib.Path(__file__).parent
N_RANKS, N, STEPS = 2, 400, 2
SCHEDULE = "slowdown(rank=1, sleep=2ms)"


def trace_run(world) -> Tracer:
    tracer = Tracer()
    run_parallel_simulation(N_RANKS, plummer_model(N, seed=5),
                            SimulationConfig(theta=0.6), n_steps=STEPS,
                            world=world, trace=tracer)
    return tracer


def main() -> int:
    write_chrome_trace(trace_run(SimWorld(N_RANKS)),
                       HERE / "golden_clean.json")
    faulty = FaultyWorld(N_RANKS, SCHEDULE, seed=123, timeout=120.0)
    write_chrome_trace(trace_run(faulty), HERE / "golden_slow.json")
    print(f"wrote golden_clean.json / golden_slow.json "
          f"({faulty.stats.count('slowdown')} slowdowns injected)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
