"""Span tracer unit tests: nesting, counters, clocks, the null path."""

import time

import pytest

from repro.obs import NULL_TRACER, NullTracer, Tracer, VirtualClock, WallClock


def test_span_records_complete_event():
    tr = Tracer(clock=VirtualClock())
    with tr.span("gravity_let", rank=1, cat="phase", step=3):
        pass
    (e,) = tr.events()
    assert e.ph == "X" and e.name == "gravity_let"
    assert e.rank == 1 and e.cat == "phase"
    assert e.args["step"] == 3
    assert e.dur > 0


def test_spans_nest_and_counters_accumulate():
    tr = Tracer(clock=VirtualClock())
    with tr.span("outer", rank=0) as outer:
        with tr.span("inner", rank=0) as inner:
            inner.add(n_pp=10)
            inner.add(n_pp=5, n_pc=2)
        outer.add(flops=100.0)
    inner_e, outer_e = tr.events()  # inner closes first
    assert inner_e.name == "inner" and outer_e.name == "outer"
    assert inner_e.args == {"n_pp": 15, "n_pc": 2}
    assert outer_e.args == {"flops": 100.0}
    # The inner span lies within the outer one.
    assert outer_e.ts <= inner_e.ts
    assert inner_e.ts + inner_e.dur <= outer_e.ts + outer_e.dur


def test_span_duration_property():
    tr = Tracer(clock=VirtualClock(tick=0.5))
    with tr.span("s", rank=0) as sp:
        pass
    assert sp.duration == pytest.approx(0.5)


def test_virtual_clock_is_per_rank_and_deterministic():
    c = VirtualClock(tick=1e-3)
    assert c.deterministic
    assert c.now(0) == 0.0
    assert c.now(0) == pytest.approx(1e-3)
    assert c.now(1) == 0.0          # rank 1 has its own counter
    assert c.peek(0) == pytest.approx(2e-3)
    assert c.peek(0) == pytest.approx(2e-3)   # peek never advances
    assert c.now(0) == pytest.approx(2e-3)


def test_wall_clock_tracks_time():
    c = WallClock()
    assert not c.deterministic
    t0 = c.now(0)
    time.sleep(0.002)
    assert c.now(0) > t0
    assert c.peek(0) >= t0


def test_record_posthoc_span_shares_timestamps():
    tr = Tracer(clock=VirtualClock())
    tr.record("sorting", 2, 1.0, 1.5, cat="phase", step=0)
    (e,) = tr.events()
    assert e.ts == 1.0 and e.dur == pytest.approx(0.5)
    assert e.rank == 2


def test_instant_with_explicit_ts_does_not_advance_clock():
    clock = VirtualClock()
    tr = Tracer(clock=clock)
    tr.instant("fault_delay", rank=0, ts=clock.peek(0), cat="fault")
    assert clock.peek(0) == 0.0     # logical timeline untouched
    (e,) = tr.events()
    assert e.ph == "i" and e.cat == "fault"


def test_flow_endpoints():
    tr = Tracer(clock=VirtualClock())
    tr.flow("s", "0.1.11.0", rank=0, ts=0.0)
    tr.flow("f", "0.1.11.0", rank=1, ts=1.0)
    with pytest.raises(ValueError):
        tr.flow("x", "id", rank=0, ts=0.0)
    s, f = sorted(tr.events(), key=lambda e: e.ph, reverse=True)
    assert s.ph == "s" and f.ph == "f"
    assert s.flow_id == f.flow_id == "0.1.11.0"


def test_events_ordered_by_rank_then_seq():
    tr = Tracer(clock=VirtualClock())
    tr.record("a", 1, 0.0, 1.0)
    tr.record("b", 0, 5.0, 6.0)
    tr.record("c", 0, 7.0, 8.0)
    names = [e.name for e in tr.events()]
    assert names == ["b", "c", "a"]
    assert tr.ranks() == [0, 1]


def test_null_tracer_is_inert_and_cheap():
    nt = NULL_TRACER
    assert isinstance(nt, NullTracer)
    assert not nt.enabled and not nt.deterministic
    with nt.span("anything", rank=0, step=1) as sp:
        sp.add(n_pp=1)
    nt.record("x", 0, 0.0, 1.0)
    nt.instant("y", rank=0)
    nt.flow("s", "id", rank=0, ts=0.0)
    assert nt.events() == []
    # The null span is a shared singleton: no per-call allocation.
    with nt.span("a", rank=0) as s1:
        pass
    with nt.span("b", rank=1) as s2:
        pass
    assert s1 is s2


def test_tracer_clear():
    tr = Tracer(clock=VirtualClock())
    tr.record("a", 0, 0.0, 1.0)
    tr.clear()
    assert tr.events() == []


def test_default_clock_is_wall():
    tr = Tracer()
    assert not tr.deterministic
    with tr.span("s", rank=0):
        time.sleep(0.001)
    (e,) = tr.events()
    assert e.dur > 0
