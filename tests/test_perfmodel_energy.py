"""Tests for the energy-efficiency figures of Sec. II."""

import pytest

from repro.perfmodel import PIZ_DAINT, TITAN
from repro.perfmodel.energy import (
    K_COMPUTER_POWER,
    PIZ_DAINT_POWER,
    TITAN_POWER,
    efficiency_advantage_over_k,
    flops_per_node_comparison,
    power_spec_for,
    run_energy_megawatt_hours,
)


def test_sec2_power_figures():
    assert K_COMPUTER_POWER.gflops_per_watt == pytest.approx(0.830)
    assert TITAN_POWER.gflops_per_watt == pytest.approx(2.1)
    assert PIZ_DAINT_POWER.gflops_per_watt == pytest.approx(2.7)


def test_gpu_machines_2_to_3x_more_efficient():
    adv = efficiency_advantage_over_k()
    assert 2.0 < adv["Titan"] < 3.0
    assert 3.0 < adv["Piz Daint"] < 3.5


def test_node_flops_ratio():
    """Sec. II: 3.95 Tflops/node on Titan vs 0.128 on K computer --
    a ~31x denser node, hence the tighter network balance."""
    f = flops_per_node_comparison()
    assert f["Titan node (K20X, SP)"] / f["K computer node"] == pytest.approx(
        30.9, rel=0.01)


def test_power_lookup():
    assert power_spec_for(TITAN) is TITAN_POWER
    assert power_spec_for(PIZ_DAINT) is PIZ_DAINT_POWER


def test_unknown_machine_raises():
    import dataclasses
    fake = dataclasses.replace(TITAN, name="Summit")
    with pytest.raises(ValueError):
        power_spec_for(fake)


def test_full_milky_way_run_energy():
    """A week on all of Titan is order-megawatt-hours -- sanity scale."""
    week_seconds = 7 * 86400
    mwh = run_energy_megawatt_hours(TITAN, 18600, week_seconds)
    assert 1000 < mwh < 2000  # ~8.2 MW x ~168 h x (18600/18688)


def test_energy_scales_with_nodes_and_time():
    e1 = run_energy_megawatt_hours(TITAN, 1000, 3600)
    e2 = run_energy_megawatt_hours(TITAN, 2000, 3600)
    e3 = run_energy_megawatt_hours(TITAN, 1000, 7200)
    assert e2 == pytest.approx(2 * e1)
    assert e3 == pytest.approx(2 * e1)
