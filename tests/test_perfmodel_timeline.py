"""Tests for the step timeline model against Table II columns."""

import pytest

from repro.perfmodel import PIZ_DAINT, TITAN, model_step
from repro.perfmodel.timeline import imbalance_factor

#: (machine, n_gpus, n_per_gpu) -> paper Table II (total, gravity_local,
#: gravity_let, non_hidden) targets.
TABLE2 = {
    ("Titan", 1, 13e6): (2.79, 2.45, 0.0, 0.0),
    ("Titan", 1024, 13e6): (4.02, 1.45, 1.78, 0.09),
    ("Titan", 2048, 13e6): (4.15, 1.45, 1.89, 0.10),
    ("Titan", 4096, 13e6): (4.41, 1.45, 2.00, 0.14),
    ("Titan", 18600, 13e6): (4.77, 1.45, 2.09, 0.22),
    ("Titan", 8192, 6.5e6): (2.65, 0.68, 1.13, 0.25),
    ("Piz Daint", 1024, 13e6): (3.84, 1.45, 1.79, 0.09),
    ("Piz Daint", 2048, 13e6): (3.94, 1.45, 1.89, 0.06),
    ("Piz Daint", 4096, 13e6): (4.15, 1.45, 2.02, 0.07),
    ("Piz Daint", 4096, 6.5e6): (2.10, 0.68, 1.01, 0.07),
}

MACHINES = {"Titan": TITAN, "Piz Daint": PIZ_DAINT}


@pytest.mark.parametrize("key", list(TABLE2))
def test_total_step_time_matches_paper(key):
    name, p, n = key
    bd = model_step(MACHINES[name], p, n)
    assert bd.total == pytest.approx(TABLE2[key][0], rel=0.10)


@pytest.mark.parametrize("key", list(TABLE2))
def test_gravity_rows_match_paper(key):
    name, p, n = key
    bd = model_step(MACHINES[name], p, n)
    total, gl, let, nh = TABLE2[key]
    assert bd.gravity_local == pytest.approx(gl, rel=0.08)
    if let > 0:
        assert bd.gravity_let == pytest.approx(let, rel=0.10)
    if nh > 0:
        assert bd.non_hidden_comm == pytest.approx(nh, abs=0.08)


def test_single_gpu_application_rate():
    bd = model_step(TITAN, 1, 13e6)
    assert bd.application_tflops() == pytest.approx(1.55, rel=0.03)
    assert bd.gpu_tflops() == pytest.approx(1.77, rel=0.03)


def test_titan_slower_than_piz_daint_at_scale():
    """Sec. VI-B: Piz Daint's faster CPUs and newer network give lower
    step times at equal GPU counts."""
    t = model_step(TITAN, 4096, 13e6).total
    d = model_step(PIZ_DAINT, 4096, 13e6).total
    assert d < t


def test_imbalance_saturates_at_cap():
    assert imbalance_factor(1) == 1.0
    assert imbalance_factor(2 ** 20) == pytest.approx(1.3)
    assert imbalance_factor(1024) < 1.3


def test_interaction_counts_in_breakdown():
    bd = model_step(TITAN, 18600, 13e6)
    assert bd.counts.n_pp / 13e6 == pytest.approx(1716, rel=0.01)
    assert bd.counts.n_pc / 13e6 == pytest.approx(6920, rel=0.02)


def test_more_particles_per_gpu_more_efficient():
    """Sec. III-B2: 'the gravity step as a whole becomes more efficient
    with more particles per GPU'."""
    lo = model_step(TITAN, 4096, 6.5e6)
    hi = model_step(TITAN, 4096, 13e6)
    assert hi.application_tflops() > lo.application_tflops()
