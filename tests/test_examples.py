"""Smoke tests: every example script must run end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: float = 300.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=timeout)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py", "1500", "3")
    assert "relative drift" in out
    assert "interactions per particle" in out


def test_milky_way(tmp_path):
    out = _run("milky_way.py", "--n", "3000", "--steps", "2",
               "--theta", "0.7", "--softening", "0.3", "--dt", "1.0",
               "--snapshot-every", "2", "--outdir", str(tmp_path / "mw"))
    assert "energy drift" in out
    assert "bulge" in out and "halo" in out
    assert list((tmp_path / "mw").glob("snapshot_*.npz"))


def test_parallel_scaling():
    out = _run("parallel_scaling.py", "--ranks", "2", "--n", "3000",
               "--steps", "1", "--theta", "0.7")
    assert "communication traffic by phase" in out
    assert "Piz Daint" in out and "Titan" in out


def test_domain_decomposition():
    out = _run("domain_decomposition.py", "--ranks", "3", "--n", "4000",
               "--grid", "24")
    assert "domain ownership" in out
    assert "need-full-LET" in out


def test_spiral_analysis():
    out = _run("spiral_analysis.py")
    assert "dominant mode: m = 2" in out
    assert "pitch angle" in out
