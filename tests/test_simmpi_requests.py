"""Tests for non-blocking requests and probing in SimMPI."""

import numpy as np
import pytest

from repro.simmpi import spmd_run


def test_isend_completes_immediately():
    def prog(comm):
        if comm.rank == 0:
            req = comm.isend("data", 1)
            assert req.wait() is None
            done, _ = req.test()
            assert done
            return None
        return comm.recv(0)
    assert spmd_run(2, prog)[1] == "data"


def test_irecv_wait():
    def prog(comm):
        if comm.rank == 0:
            comm.send(np.arange(4), 1, tag=5)
            return None
        req = comm.irecv(0, tag=5)
        data = req.wait()
        # Repeated waits return the same payload.
        assert np.array_equal(req.wait(), data)
        return int(data.sum())
    assert spmd_run(2, prog)[1] == 6


def test_irecv_test_polls():
    def prog(comm):
        if comm.rank == 0:
            # Wait for rank 1's ready signal before sending the payload.
            assert comm.recv(1, tag=1) == "ready"
            comm.send("payload", 1, tag=2)
            return None
        req = comm.irecv(0, tag=2)
        done, val = req.test()
        assert not done and val is None  # nothing sent yet
        comm.send("ready", 0, tag=1)
        return req.wait()
    assert spmd_run(2, prog)[1] == "payload"


def test_iprobe():
    def prog(comm):
        if comm.rank == 0:
            assert comm.recv(1, tag=9) == "go"
            comm.send(1.25, 1, tag=3)
            return None
        assert comm.iprobe(0, tag=3) is False
        comm.send("go", 0, tag=9)
        # Spin until the message lands (bounded by world timeout anyway).
        while not comm.iprobe(0, tag=3):
            pass
        return comm.recv(0, tag=3)
    assert spmd_run(2, prog)[1] == 1.25


def test_irecv_invalid_source():
    def prog(comm):
        comm.irecv(99)
    with pytest.raises(RuntimeError):
        spmd_run(2, prog)


def test_out_of_order_arrival_with_probe():
    """A rank can service whichever neighbour's message lands first."""
    def prog(comm):
        if comm.rank == 0:
            got = []
            pending = {1, 2}
            while pending:
                for r in list(pending):
                    if comm.iprobe(r, tag=7):
                        got.append(comm.recv(r, tag=7))
                        pending.remove(r)
            return sorted(got)
        comm.send(comm.rank * 10, 0, tag=7)
        return None
    assert spmd_run(3, prog)[0] == [10, 20]
