"""Tests for the ASCII snapshot format."""

import numpy as np
import pytest

from repro.ics import plummer_model
from repro.io.ascii import load_ascii, save_ascii


def test_roundtrip(tmp_path):
    ps = plummer_model(200, seed=103)
    ps.component[:100] = 1
    path = tmp_path / "snap.txt"
    save_ascii(path, ps, time=3.5, step=7)
    loaded, meta = load_ascii(path)
    assert np.allclose(loaded.pos, ps.pos)
    assert np.allclose(loaded.vel, ps.vel)
    assert np.allclose(loaded.mass, ps.mass)
    assert np.array_equal(loaded.ids, ps.ids)
    assert np.array_equal(loaded.component, ps.component)
    assert meta["time"] == 3.5
    assert meta["step"] == 7
    assert meta["n"] == 200


def test_single_particle(tmp_path):
    ps = plummer_model(1, seed=104)
    path = tmp_path / "one.txt"
    save_ascii(path, ps)
    loaded, _ = load_ascii(path)
    assert loaded.n == 1


def test_wrong_columns_rejected(tmp_path):
    path = tmp_path / "bad.txt"
    path.write_text("# junk\n1 2 3\n")
    with pytest.raises(ValueError):
        load_ascii(path)


def test_file_is_human_readable(tmp_path):
    ps = plummer_model(5, seed=105)
    path = tmp_path / "readable.txt"
    save_ascii(path, ps, time=1.0)
    text = path.read_text()
    assert text.startswith("# repro ascii snapshot")
    assert "columns: id component mass x y z vx vy vz" in text
    # one header block + 5 data rows
    assert len([l for l in text.splitlines() if not l.startswith("#")]) == 5
