"""Tests for operation counting (paper Sec. VI-A conventions)."""

import pytest

from repro.gravity import (
    FLOPS_PER_PC,
    FLOPS_PER_PP,
    FLOPS_PER_PP_LEGACY,
    InteractionCounts,
)


def test_paper_constants():
    assert FLOPS_PER_PP == 23
    assert FLOPS_PER_PC == 65
    assert FLOPS_PER_PP_LEGACY == 38


def test_flops_formula():
    c = InteractionCounts(n_pp=100, n_pc=10)
    assert c.flops == 100 * 23 + 10 * 65


def test_monopole_only_counts_pc_as_pp():
    c = InteractionCounts(n_pp=0, n_pc=10, quadrupole=False)
    assert c.flops == 10 * 23


def test_per_particle():
    c = InteractionCounts(n_pp=1745 * 100, n_pc=4529 * 100)
    pp, pc = c.per_particle(100)
    assert pp == pytest.approx(1745)
    assert pc == pytest.approx(4529)


def test_per_particle_rejects_zero():
    with pytest.raises(ValueError):
        InteractionCounts().per_particle(0)


def test_tflops():
    c = InteractionCounts(n_pp=10 ** 12 // 23, n_pc=0)
    assert c.tflops(1.0) == pytest.approx(1.0, rel=1e-6)
    assert c.tflops(0.0) == 0.0


def test_add_and_sum():
    a = InteractionCounts(n_pp=5, n_pc=7)
    b = InteractionCounts(n_pp=1, n_pc=2)
    a.add(b)
    assert (a.n_pp, a.n_pc) == (6, 9)
    c = a + b
    assert (c.n_pp, c.n_pc) == (7, 11)
    assert (a.n_pp, a.n_pc) == (6, 9)  # + is non-mutating


def test_single_gpu_flops_reproduce_paper_rate():
    """Table II single-GPU column: the recorded interaction mix at 13 M
    particles implies 1.77 Tflops at a 2.46 s kernel time."""
    n = 13_000_000
    c = InteractionCounts(n_pp=1745 * n, n_pc=4529 * n)
    assert c.tflops(2.46) == pytest.approx(1.768, rel=0.01)
