"""Trace determinism: virtual-clock runs export byte-identical JSON.

Thread scheduling in SimMPI is real, so wall-clock traces differ run to
run; the :class:`~repro.obs.VirtualClock` plus per-rank sequence
ordering removes every nondeterministic input from the exported bytes.
These tests pin that property -- including across *maskable* fault
schedules, where injected faults may only add ``cat="fault"`` instants,
never move the logical timeline (the injection sites use ``peek``).
"""

import pytest

from repro import SimulationConfig
from repro.core.parallel_simulation import run_parallel_simulation
from repro.core.simulation import Simulation
from repro.faults import FaultyWorld
from repro.ics import plummer_model
from repro.obs import (
    StreamingJsonlSink,
    Tracer,
    VirtualClock,
    chrome_trace_json,
    jsonl_lines,
    write_jsonl,
)
from repro.simmpi import SimWorld

#: Every maskable fault kind at once (mirrors tests/harness/test_faults).
MASKABLE = "delay(prob=0.3, max=1ms); reorder(prob=0.5); duplicate(prob=0.25)"

N_RANKS = 2
N = 400


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(theta=0.6, softening=0.02, dt=0.01)


def _traced_run(cfg, world=None, transport="threads", n_ranks=N_RANKS):
    tracer = Tracer(clock=VirtualClock())
    particles = plummer_model(N, seed=5)
    if world is None and transport == "threads":
        world = SimWorld(n_ranks)
    run_parallel_simulation(n_ranks, particles, cfg, n_steps=2,
                            world=world, trace=tracer, transport=transport)
    return tracer


def test_parallel_trace_byte_identical_across_runs(cfg):
    # cfg defaults include the fast path (batched forest walks, segment
    # scatter, sort reuse), so this pins its determinism too.
    a = chrome_trace_json(_traced_run(cfg))
    b = chrome_trace_json(_traced_run(cfg))
    assert a == b


def test_reference_force_path_trace_byte_identical():
    """The pre-fast-path pipeline stays deterministic as well."""
    ref = SimulationConfig(theta=0.6, softening=0.02, dt=0.01,
                           batch_sources=False, scatter="bincount",
                           sort_reuse=False)
    assert chrome_trace_json(_traced_run(ref)) == \
        chrome_trace_json(_traced_run(ref))


def test_float32_fast_path_trace_byte_identical():
    """Reduced-precision kernels don't reintroduce nondeterminism."""
    c32 = SimulationConfig(theta=0.6, softening=0.02, dt=0.01,
                           precision="float32")
    assert chrome_trace_json(_traced_run(c32)) == \
        chrome_trace_json(_traced_run(c32))


def test_jsonl_byte_identical_across_runs(cfg):
    a = "\n".join(jsonl_lines(_traced_run(cfg)))
    b = "\n".join(jsonl_lines(_traced_run(cfg)))
    assert a == b


@pytest.mark.parametrize("ranks", (1, 2, 4))
def test_trace_byte_identical_across_transports(cfg, ranks):
    """The process transport replays the threaded trace *byte for byte*
    under the virtual clock: per-rank worker tracers merged by (rank,
    seq) reproduce the shared-tracer event stream exactly.  This is the
    strongest cross-transport equivalence check we have -- every span
    name, timestamp, counter and flow id must line up."""
    threads = chrome_trace_json(_traced_run(cfg, n_ranks=ranks))
    process = chrome_trace_json(_traced_run(cfg, transport="process",
                                            n_ranks=ranks))
    assert threads == process


@pytest.mark.parametrize("transport", ("threads", "process"))
def test_trace_byte_identical_across_runs_per_transport(cfg, transport):
    a = chrome_trace_json(_traced_run(cfg, transport=transport))
    b = chrome_trace_json(_traced_run(cfg, transport=transport))
    assert a == b


def test_trace_identical_across_maskable_fault_schedules(cfg):
    """Masked transport faults leave the logical trace untouched.

    The comparison excludes ``cat="fault"`` instants (the injections
    themselves are *supposed* to show up); everything else -- spans,
    flows, timestamps -- must match the fault-free bytes exactly.
    """
    clean = chrome_trace_json(_traced_run(cfg),
                              exclude_categories=("fault",))
    faulty_world = FaultyWorld(N_RANKS, MASKABLE, seed=123, timeout=120.0)
    faulty = chrome_trace_json(_traced_run(cfg, world=faulty_world),
                               exclude_categories=("fault",))
    assert clean == faulty


def test_fault_instants_present_in_faulty_trace(cfg):
    world = FaultyWorld(N_RANKS, MASKABLE, seed=123, timeout=120.0)
    tracer = _traced_run(cfg, world=world)
    kinds = {e.name for e in tracer.events() if e.cat == "fault"}
    assert kinds & {"fault_delay", "fault_reorder", "fault_duplicate"}
    # Faults recorded without advancing any rank's logical clock: the
    # instant timestamps coincide with ordinary event timestamps.
    assert sum(world.stats.count(k)
               for k in ("delay", "reorder", "duplicate")) > 0


def _measured_run(cfg):
    """A measured-mode run under the virtual clock: the cost feedback
    consumes tracer-clock phase durations, which are deterministic
    logical ticks, so the whole feedback loop must replay exactly."""
    tracer = Tracer(clock=VirtualClock())
    particles = plummer_model(N, seed=5)
    sims = run_parallel_simulation(N_RANKS, particles, cfg, n_steps=3,
                                   load_balance="measured",
                                   lb_source="counts", trace=tracer)
    return tracer, [s.boundary_history for s in sims]


def test_measured_loadbalance_trace_and_boundaries_deterministic(cfg):
    """Closing the feedback loop must not open a nondeterminism hole:
    byte-identical traces and identical domain-boundary sequences."""
    trace_a, bounds_a = _measured_run(cfg)
    trace_b, bounds_b = _measured_run(cfg)
    assert chrome_trace_json(trace_a) == chrome_trace_json(trace_b)
    assert bounds_a == bounds_b
    # and the collective decision left all ranks with the same sequence
    assert all(b == bounds_a[0] for b in bounds_a)


def _streamed_run(cfg, path, flush_every=16):
    """A virtual-clock run streamed to JSONL *during* execution."""
    sink = StreamingJsonlSink(path, flush_every=flush_every)
    tracer = Tracer(clock=VirtualClock(), sink=sink)
    particles = plummer_model(N, seed=5)
    run_parallel_simulation(N_RANKS, particles, cfg, n_steps=2,
                            trace=tracer)
    tracer.close()
    return sink


def test_streaming_jsonl_byte_identical_to_posthoc_export(cfg, tmp_path):
    """Tentpole invariant: the incremental writer's bytes equal the
    buffered exporter's on the same logical run -- one serialization,
    two paths, zero divergence."""
    streamed = tmp_path / "streamed.jsonl"
    _streamed_run(cfg, streamed)
    buffered = tmp_path / "buffered.jsonl"
    write_jsonl(_traced_run(cfg), buffered)
    assert streamed.read_bytes() == buffered.read_bytes()


def test_streaming_run_byte_identical_across_runs(cfg, tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _streamed_run(cfg, a, flush_every=8)
    _streamed_run(cfg, b, flush_every=128)  # cadence can't change bytes
    assert a.read_bytes() == b.read_bytes()


def test_streaming_only_tracer_holds_no_events(cfg, tmp_path):
    sink = _streamed_run(cfg, tmp_path / "t.jsonl")
    assert sink.n_events > 0
    assert sink.max_buffered <= 16 * N_RANKS  # flush cadence bounds memory


def test_perf_json_byte_identical_across_runs_and_transports(cfg):
    """The report's "perf" section is a pure function of the trace
    bytes, so a virtual-clock run yields byte-identical achieved
    flop-rate JSON across repeated runs and across transports."""
    import json

    from repro.obs.report import _json_report

    def perf_bytes(transport):
        doc = json.loads(chrome_trace_json(_traced_run(
            cfg, transport=transport, n_ranks=4)))
        report = _json_report(doc)
        assert "perf" in report
        return json.dumps(report, sort_keys=True)

    threads_a = perf_bytes("threads")
    threads_b = perf_bytes("threads")
    process = perf_bytes("process")
    assert threads_a == threads_b
    assert threads_a == process

    perf = json.loads(threads_a)["perf"]
    for entry in perf["per_rank"].values():
        assert "model_efficiency" in entry
        for phase in ("gravity_local", "gravity_let", "combined"):
            assert "gflops" in entry[phase]
    assert len(perf["per_rank"]) == 4


def test_serial_trace_byte_identical():
    def run():
        tracer = Tracer(clock=VirtualClock())
        sim = Simulation(plummer_model(200, seed=3),
                         SimulationConfig(dt=0.01), trace=tracer)
        sim.evolve(2)
        return chrome_trace_json(tracer)

    assert run() == run()


# -- step coherence: the reuse paths stay byte-deterministic --------------

@pytest.fixture(scope="module")
def coherent_cfg():
    """Every step-coherence knob on: incremental tree repair, walk
    warm-starts, and the incremental LET drain (which overlaps the
    boundary-batch walk with in-flight LET sends yet still consumes
    LETs in rank order)."""
    return SimulationConfig(theta=0.6, softening=0.02, dt=0.01,
                            tree_reuse="repair", walk_warm_start=True,
                            let_drain="incremental")


def test_coherent_trace_byte_identical_across_runs(coherent_cfg):
    a = chrome_trace_json(_traced_run(coherent_cfg))
    b = chrome_trace_json(_traced_run(coherent_cfg))
    assert a == b


@pytest.mark.parametrize("ranks", (2, 4))
def test_coherent_trace_byte_identical_across_transports(coherent_cfg,
                                                         ranks):
    """The incremental drain and the warm-start caches are rank-local
    and structurally validated, so the process transport must replay
    the threaded coherent trace byte for byte -- including the new
    tree_repair spans and walk-cache counters."""
    threads = chrome_trace_json(_traced_run(coherent_cfg, n_ranks=ranks))
    process = chrome_trace_json(_traced_run(coherent_cfg,
                                            transport="process",
                                            n_ranks=ranks))
    assert threads == process


def test_incremental_drain_trace_byte_identical(cfg):
    """let_drain="incremental" alone (no other reuse knobs): still a
    deterministic schedule under the virtual clock."""
    inc = SimulationConfig(theta=0.6, softening=0.02, dt=0.01,
                           let_drain="incremental")
    assert chrome_trace_json(_traced_run(inc)) == \
        chrome_trace_json(_traced_run(inc))


def test_coherent_measured_trace_deterministic(coherent_cfg):
    """Reuse knobs + the measured load-balance feedback loop: the
    regime the knobs are built for (a pinned box is what lets the tree
    cache engage) must replay exactly, boundaries included."""
    trace_a, bounds_a = _measured_run(coherent_cfg)
    trace_b, bounds_b = _measured_run(coherent_cfg)
    assert chrome_trace_json(trace_a) == chrome_trace_json(trace_b)
    assert bounds_a == bounds_b


def test_coherent_trace_contains_repair_spans(coherent_cfg):
    tracer = _traced_run(coherent_cfg)
    names = {e.name for e in tracer.events()}
    assert "tree_repair" in names
    modes = {e.args.get("tree_mode") for e in tracer.events()
             if e.name == "tree_repair"}
    assert modes <= {"reuse", "repair", "cold"} and modes
