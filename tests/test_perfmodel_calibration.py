"""Tests that the perf model's structural claims hold for the real code."""

import numpy as np
import pytest

from repro.perfmodel.calibration import (
    calibrate_boundary_sizes,
    calibrate_interactions,
)


@pytest.fixture(scope="module")
def interaction_cal():
    return calibrate_interactions(n_values=[3000, 6000, 12000, 24000],
                                  theta=0.5, seed=65)


@pytest.fixture(scope="module")
def boundary_cal():
    return calibrate_boundary_sizes(n_values=[4000, 16000, 64000],
                                    theta=0.5, seed=66)


def test_pc_grows_logarithmically(interaction_cal):
    """p-c per particle increases with N and the log-linear fit is good."""
    cal = interaction_cal
    assert np.all(np.diff(cal.pc_per_particle) > 0)
    # fit quality: residuals small relative to the total growth
    x = np.log2(cal.n_values / cal.n_values[0])
    fitted = cal.pc_intercept + cal.pc_log_slope * x
    resid = np.abs(fitted - cal.pc_per_particle)
    growth = cal.pc_per_particle[-1] - cal.pc_per_particle[0]
    assert resid.max() < 0.25 * growth
    assert cal.pc_log_slope > 0


def test_pp_roughly_constant(interaction_cal):
    """p-p per particle is N-independent up to finite-size effects; its
    spread must be far smaller than the p-c growth over the same range."""
    cal = interaction_cal
    pp_growth = (cal.pp_per_particle.max() - cal.pp_per_particle.min())
    pc_growth = cal.pc_per_particle[-1] - cal.pc_per_particle[0]
    rel_pp = pp_growth / cal.pp_per_particle.mean()
    rel_pc = pc_growth / cal.pc_per_particle.mean()
    assert rel_pp < rel_pc


def test_pc_extrapolation_consistent(interaction_cal):
    cal = interaction_cal
    assert cal.pc_extrapolated(cal.n_values[0]) == pytest.approx(cal.pc_intercept)
    assert cal.pc_extrapolated(4 * cal.n_values[0]) == pytest.approx(
        cal.pc_intercept + 2 * cal.pc_log_slope)


def test_boundary_sublinear(boundary_cal):
    """The boundary structure must grow sublinearly with local N -- the
    property behind 'the communication time itself increases only
    slightly' (Sec. III-B2).  Expect an exponent near 2/3."""
    assert 0.4 < boundary_cal.power_law_exponent < 0.9


def test_boundary_sizes_increase(boundary_cal):
    assert np.all(np.diff(boundary_cal.boundary_cells) > 0)
    assert np.all(np.diff(boundary_cal.boundary_bytes) > 0)
