"""Tests for the distributed simulation driver."""

import numpy as np
import pytest

from repro import Simulation, SimulationConfig
from repro.core.parallel_simulation import gather_particles, run_parallel_simulation
from repro.ics import plummer_model


@pytest.fixture(scope="module")
def cfg():
    return SimulationConfig(theta=0.5, softening=0.02, dt=0.01)


def test_tracks_serial_simulation(cfg):
    """Multi-rank evolution must track the serial driver closely (the
    only differences are MAC decisions near domain boundaries)."""
    ps = plummer_model(3000, seed=59)
    sims = run_parallel_simulation(3, ps.copy(), cfg, n_steps=3)
    parallel = gather_particles(sims)
    serial = Simulation(ps.copy(), cfg)
    serial.evolve(3)
    dx = np.linalg.norm(parallel.pos - serial.particles.pos, axis=1)
    scale = np.linalg.norm(serial.particles.pos, axis=1).mean()
    assert np.max(dx) < 1e-4 * scale


def test_energy_conserved(cfg):
    ps = plummer_model(3000, seed=60)
    n = ps.n

    def prog(comm):
        from repro.core import ParallelSimulation
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        sim = ParallelSimulation(comm, ps.select(np.arange(lo, hi)), cfg)
        e0 = sim.diagnostics().total
        sim.evolve(10)
        e1 = sim.diagnostics().total
        return e0, e1

    from repro.simmpi import spmd_run
    results = spmd_run(2, prog)
    e0, e1 = results[0]
    assert abs((e1 - e0) / e0) < 1e-3
    # all ranks agree on the reduced diagnostics
    assert results[0] == pytest.approx(results[1])


def test_particle_count_conserved(cfg):
    ps = plummer_model(2000, seed=61)
    sims = run_parallel_simulation(4, ps, cfg, n_steps=2)
    assert sum(s.particles.n for s in sims) == 2000
    ids = np.concatenate([s.particles.ids for s in sims])
    assert np.array_equal(np.sort(ids), np.arange(2000))


def test_load_stays_balanced(cfg):
    ps = plummer_model(4000, seed=62)
    sims = run_parallel_simulation(4, ps, cfg, n_steps=2)
    counts = np.array([s.particles.n for s in sims])
    assert counts.max() <= 1.35 * counts.mean()


def test_history_recorded(cfg):
    ps = plummer_model(1500, seed=63)
    sims = run_parallel_simulation(2, ps, cfg, n_steps=2)
    for s in sims:
        assert len(s.history) == 2
        assert s.history[0].counts.n_pp > 0
        assert s.history[0].domain_update > 0


def test_serial_decomposition_method_works(cfg):
    ps = plummer_model(1500, seed=64)
    sims = run_parallel_simulation(2, ps, cfg, n_steps=1,
                                   decomposition_method="serial")
    assert sum(s.particles.n for s in sims) == 1500
