"""Tests for the communication-hiding instrumentation.

The paper's central engineering claim is that LET communication hides
behind computation; ``DistributedForceResult.recv_wait_seconds`` is the
measured non-hidden remainder on our runtime.
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.ics import plummer_model
from repro.parallel import distributed_forces, domain_update, exchange_particles
from repro.sfc import BoundingBox
from repro.simmpi import spmd_run


def _run(n=4000, ranks=3):
    ps = plummer_model(n, seed=92)
    box = BoundingBox.from_positions(ps.pos)
    cfg = SimulationConfig(theta=0.5, softening=0.02, dt=0.01)

    def prog(comm):
        lo = n * comm.rank // comm.size
        hi = n * (comm.rank + 1) // comm.size
        local = ps.select(np.arange(lo, hi))
        keys = box.keys(local.pos)
        order = np.argsort(keys)
        local.reorder(order)
        decomp = domain_update(comm, keys[order], rate2=0.1)
        local = exchange_particles(comm, local, keys[order], decomp)
        return distributed_forces(comm, local, cfg, box)

    return spmd_run(ranks, prog)


def test_recv_wait_recorded():
    results = _run()
    for res in results:
        assert res.recv_wait_seconds >= 0.0


def test_most_communication_hidden():
    """Because sends are posted before the local walk, the blocked-recv
    time must be a small fraction of the total gravity work on at least
    most ranks (some rank finishes first and waits; that is the
    'Unbalance' row, not hidden-communication failure)."""
    results = _run(n=6000, ranks=3)
    waits = sorted(r.recv_wait_seconds for r in results)
    # The median rank should barely wait.
    assert waits[len(waits) // 2] < 1.0
