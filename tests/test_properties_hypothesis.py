"""Property-based tests of core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gravity import direct_forces, tree_forces
from repro.octree import build_octree, compute_moments, make_groups
from repro.parallel import cut_weighted_with_cap
from repro.parallel.loadbalance import domain_counts
from repro.sfc import BoundingBox


@st.composite
def particle_clouds(draw, max_n=400):
    """Random particle clouds with varied anisotropy and clustering."""
    n = draw(st.integers(8, max_n))
    seed = draw(st.integers(0, 2 ** 31))
    rng = np.random.default_rng(seed)
    shape = draw(st.sampled_from(["uniform", "gaussian", "disk", "clusters"]))
    if shape == "uniform":
        pos = rng.uniform(-1, 1, (n, 3))
    elif shape == "gaussian":
        pos = rng.normal(size=(n, 3))
    elif shape == "disk":
        pos = rng.normal(size=(n, 3)) * [3.0, 3.0, 0.1]
    else:
        centers = rng.uniform(-5, 5, (4, 3))
        pos = centers[rng.integers(0, 4, n)] + rng.normal(scale=0.2, size=(n, 3))
    mass = rng.uniform(0.1, 2.0, n)
    return pos, mass


@settings(max_examples=25, deadline=None)
@given(particle_clouds())
def test_tree_structure_invariants(cloud):
    """Any cloud produces a valid tree whose leaves partition particles."""
    pos, mass = cloud
    tree = build_octree(pos, nleaf=8)
    tree.validate()
    leaves = tree.leaf_cells()
    assert tree.body_count[leaves].sum() == len(pos)


@settings(max_examples=25, deadline=None)
@given(particle_clouds())
def test_moment_mass_conservation(cloud):
    """Root mass equals total mass for any cloud, and every internal
    cell's mass equals the sum of its children."""
    pos, mass = cloud
    tree = build_octree(pos, nleaf=8)
    compute_moments(tree, pos, mass)
    assert tree.mass[0] == pytest.approx(mass.sum(), rel=1e-9)
    internal = np.flatnonzero(~tree.is_leaf)
    for c in internal:
        ch = tree.children_of(int(c))
        assert tree.mass[c] == pytest.approx(tree.mass[ch].sum(), rel=1e-9)


@settings(max_examples=15, deadline=None)
@given(particle_clouds(max_n=200), st.floats(0.3, 0.9))
def test_tree_force_error_bounded(cloud, theta):
    """Tree forces stay within a few percent of direct summation for any
    cloud and sensible opening angle."""
    pos, mass = cloud
    eps = 0.05
    tree = build_octree(pos, nleaf=8)
    compute_moments(tree, pos, mass)
    make_groups(tree, 32)
    res = tree_forces(tree, pos, mass, theta=theta, eps=eps)
    acc_d, phi_d = direct_forces(pos, mass, eps=eps)
    num = np.linalg.norm(res.acc - acc_d, axis=1)
    den = np.linalg.norm(acc_d, axis=1) + 1e-12
    # Median relative error bounded (individual particles can sit at
    # force cancellation points where relative error is meaningless).
    assert np.median(num / den) < 0.05


@settings(max_examples=25, deadline=None)
@given(particle_clouds(max_n=300))
def test_group_walk_total_interactions_bounded_below(cloud):
    """Every particle interacts with every other exactly once across the
    p-p and p-c lists: the counts must satisfy n_pp + (cell expansions)
    >= N-1 sources per particle at theta -> large."""
    pos, mass = cloud
    n = len(pos)
    tree = build_octree(pos, nleaf=8)
    compute_moments(tree, pos, mass)
    make_groups(tree, 32)
    res = tree_forces(tree, pos, mass, theta=0.5, eps=0.05)
    # each particle must have at least one interaction partner
    assert res.counts.n_pp + res.counts.n_pc >= n


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 32), st.integers(10, 2000), st.integers(0, 2 ** 31))
def test_cut_partition_properties(p, n, seed):
    """Boundary cuts are monotone, cover the key space and respect the
    cap for any sample set."""
    rng = np.random.default_rng(seed)
    keys = np.sort(rng.integers(0, 2 ** 63, n, dtype=np.uint64))
    cost = rng.uniform(0.0, 5.0, n)
    b = cut_weighted_with_cap(keys, cost, p, cap_ratio=1.3)
    assert len(b) == p + 1
    assert b[0] == 0 and b[-1] == np.uint64(0xFFFFFFFFFFFFFFFF)
    f = b.astype(np.float64)
    assert np.all(np.diff(f) >= 0)
    counts = domain_counts(keys, b)
    assert counts.sum() == n


@settings(max_examples=25, deadline=None)
@given(particle_clouds(max_n=300))
def test_bbox_keys_deterministic_and_bounded(cloud):
    pos, _ = cloud
    box = BoundingBox.from_positions(pos)
    k1 = box.keys(pos, "hilbert")
    k2 = box.keys(pos, "hilbert")
    assert np.array_equal(k1, k2)
    assert k1.max() < np.uint64(1) << np.uint64(63)
